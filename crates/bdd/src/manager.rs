//! The BDD manager: node storage, hash-consing, and bookkeeping.
//!
//! Hot-path layout: the per-variable unique tables and the computed table
//! are hand-rolled open-addressing tables over plain `u32` slots — no
//! SipHash, no per-entry allocation. The computed table is a bounded,
//! lossy, 2-way set-associative cache that is invalidated in O(1) by a
//! generation bump when GC or reordering makes memoized results stale.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::error::BddError;
use crate::node::{Bdd, Node, Var, TERMINAL_VAR};

/// Sentinel for "no node id" in the open-addressed tables.
const EMPTY: u32 = u32::MAX;

/// Multiplicative mixer (splitmix64 finalizer) — the in-repo stand-in
/// for a fast non-cryptographic hasher.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn hash_pair(lo: u32, hi: u32) -> u64 {
    mix64(((lo as u64) << 32) | hi as u64)
}

// ---------------------------------------------------------------------
// Unique tables
// ---------------------------------------------------------------------

/// One variable's unique table: open addressing with linear probing and
/// backward-shift deletion. Each slot carries the `(lo, hi)` key inline
/// next to the node id, so a probe is one cache line touch and two
/// compares — no rehashing of `Node`s, no boxed buckets.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    /// `(lo, hi, id)` triples, flat; `id == EMPTY` marks a free slot.
    slots: Vec<(u32, u32, u32)>,
    len: usize,
}

impl UniqueTable {
    pub(crate) fn new() -> UniqueTable {
        UniqueTable { slots: Vec::new(), len: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    pub(crate) fn get(&self, lo: Bdd, hi: Bdd) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = hash_pair(lo.0, hi.0) as usize & mask;
        loop {
            let (slo, shi, sid) = self.slots[i];
            if sid == EMPTY {
                return None;
            }
            if slo == lo.0 && shi == hi.0 {
                return Some(sid);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a key known to be absent.
    pub(crate) fn insert(&mut self, lo: Bdd, hi: Bdd, id: u32) {
        if self.slots.is_empty() {
            self.slots.resize(16, (0, 0, EMPTY));
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = hash_pair(lo.0, hi.0) as usize & mask;
        while self.slots[i].2 != EMPTY {
            debug_assert!(
                !(self.slots[i].0 == lo.0 && self.slots[i].1 == hi.0),
                "duplicate unique-table insert"
            );
            i = (i + 1) & mask;
        }
        self.slots[i] = (lo.0, hi.0, id);
        self.len += 1;
    }

    /// Removes a key if present, returning its id. Uses backward-shift
    /// deletion so probe chains stay dense (no tombstones).
    pub(crate) fn remove(&mut self, lo: Bdd, hi: Bdd) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut i = hash_pair(lo.0, hi.0) as usize & mask;
        loop {
            let (slo, shi, sid) = self.slots[i];
            if sid == EMPTY {
                return None;
            }
            if slo == lo.0 && shi == hi.0 {
                self.len -= 1;
                // Backward shift: move later chain members up until a
                // free slot or a slot already at its home position.
                let removed = sid;
                let mut hole = i;
                let mut j = (i + 1) & mask;
                loop {
                    let (jlo, jhi, jid) = self.slots[j];
                    if jid == EMPTY {
                        break;
                    }
                    let home = hash_pair(jlo, jhi) as usize & mask;
                    // Can j's entry fill the hole without breaking its
                    // own probe chain? (standard circular-distance test)
                    let dist_home_hole = hole.wrapping_sub(home) & mask;
                    let dist_home_j = j.wrapping_sub(home) & mask;
                    if dist_home_hole <= dist_home_j {
                        self.slots[hole] = self.slots[j];
                        hole = j;
                    }
                    j = (j + 1) & mask;
                }
                self.slots[hole] = (0, 0, EMPTY);
                return Some(removed);
            }
            i = (i + 1) & mask;
        }
    }

    /// Open-addressing slots currently allocated (0 before the first
    /// insert). With [`len`](Self::len) this is the load factor; the
    /// growth policy in [`insert`](Self::insert) keeps `len/slots` at
    /// or below 3/4, so a non-empty table's load is always in (0, 1].
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Probe-length census: adds each entry's circular distance from
    /// its home slot into `hist` (growing it as needed) and returns the
    /// longest distance seen. The heap observatory's deep-scan
    /// primitive — read-only, one pass over the slots.
    pub(crate) fn probe_stats(&self, hist: &mut Vec<u64>) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let mask = self.mask();
        let mut longest = 0u64;
        for (i, &(lo, hi, id)) in self.slots.iter().enumerate() {
            if id == EMPTY {
                continue;
            }
            let home = hash_pair(lo, hi) as usize & mask;
            let d = i.wrapping_sub(home) & mask;
            if hist.len() <= d {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
            longest = longest.max(d as u64);
        }
        longest
    }

    /// All node ids currently stored (snapshot).
    pub(crate) fn ids(&self) -> Vec<u32> {
        self.slots.iter().filter(|s| s.2 != EMPTY).map(|s| s.2).collect()
    }

    /// All `(lo, hi, id)` entries currently stored.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.slots.iter().copied().filter(|s| s.2 != EMPTY)
    }

    /// Drops every entry whose id fails the predicate.
    pub(crate) fn retain_ids(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let old: Vec<(u32, u32, u32)> =
            self.slots.iter().copied().filter(|s| s.2 != EMPTY).collect();
        for s in &mut self.slots {
            *s = (0, 0, EMPTY);
        }
        self.len = 0;
        for (lo, hi, id) in old {
            if keep(id) {
                self.insert(Bdd(lo), Bdd(hi), id);
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0, EMPTY); new_cap]);
        let mask = self.mask();
        for (lo, hi, id) in old {
            if id == EMPTY {
                continue;
            }
            let mut i = hash_pair(lo, hi) as usize & mask;
            while self.slots[i].2 != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (lo, hi, id);
        }
    }
}

// ---------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------

/// Operation tags for the computed table. The discriminant doubles as
/// the index into the per-operation stats counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub(crate) enum CacheOp {
    Ite = 0,
    And = 1,
    Or = 2,
    Xor = 3,
    Not = 4,
    Exists = 5,
    Forall = 6,
    AndExists = 7,
    Constrain = 8,
}

/// Number of distinct `CacheOp` tags.
pub const NUM_CACHE_OPS: usize = 9;

/// Human-readable names for the per-operation stat rows, indexed like
/// [`BddManagerStats::per_op`].
pub const CACHE_OP_NAMES: [&str; NUM_CACHE_OPS] =
    ["ite", "and", "or", "xor", "not", "exists", "forall", "and_exists", "constrain"];

pub(crate) type CacheKey = (CacheOp, u32, u32, u32);

/// One computed-table entry; `gen` ties it to the cache generation so
/// the whole table is invalidated by bumping the generation counter.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    op: u8,
    result: u32,
    gen: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry { a: 0, b: 0, c: 0, op: 0, result: EMPTY, gen: 0 };

/// Bounded, lossy computed table: 2-way set-associative (direct-mapped
/// at capacity 1), evicting on set overflow instead of growing. Memory
/// stays fixed no matter how long a fixpoint runs; GC/reorder
/// invalidation is an O(1) generation bump.
#[derive(Debug, Clone)]
pub(crate) struct ComputedCache {
    entries: Vec<CacheEntry>,
    ways: usize,
    set_mask: usize,
    gen: u32,
}

impl ComputedCache {
    /// Default capacity (entries). 2^17 × 24 B ≈ 3 MiB.
    pub(crate) const DEFAULT_CAPACITY: usize = 1 << 17;

    pub(crate) fn with_capacity(capacity: usize) -> ComputedCache {
        let ways = if capacity <= 1 { 1 } else { 2 };
        let sets = (capacity / ways).next_power_of_two().max(1);
        ComputedCache { entries: vec![EMPTY_ENTRY; sets * ways], ways, set_mask: sets - 1, gen: 1 }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn set_of(&self, key: &CacheKey) -> usize {
        let h = mix64(
            ((key.0 as u64) << 56) ^ ((key.1 as u64) << 34) ^ ((key.2 as u64) << 17) ^ key.3 as u64,
        );
        (h as usize & self.set_mask) * self.ways
    }

    #[inline]
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<Bdd> {
        let base = self.set_of(key);
        for w in 0..self.ways {
            let e = self.entries[base + w];
            if e.result != EMPTY
                && e.gen == self.gen
                && e.op == key.0 as u8
                && e.a == key.1
                && e.b == key.2
                && e.c == key.3
            {
                if w != 0 {
                    // Most-recently-used to way 0.
                    self.entries.swap(base, base + w);
                }
                return Some(Bdd(self.entries[base].result));
            }
        }
        None
    }

    /// Inserts, returning `true` if a live entry was evicted.
    #[inline]
    pub(crate) fn put(&mut self, key: &CacheKey, value: Bdd) -> bool {
        let base = self.set_of(key);
        let last = base + self.ways - 1;
        let victim = self.entries[last];
        let evicted = victim.result != EMPTY && victim.gen == self.gen;
        // Shift ways down (LRU out of the last way), new entry in way 0.
        for w in (base + 1..=last).rev() {
            self.entries[w] = self.entries[w - 1];
        }
        self.entries[base] = CacheEntry {
            a: key.1,
            b: key.2,
            c: key.3,
            op: key.0 as u8,
            result: value.0,
            gen: self.gen,
        };
        evicted
    }

    /// Live (current-generation) entries per operation tag, indexed
    /// like [`CACHE_OP_NAMES`], plus the total. One read-only pass —
    /// generation-stale and never-filled entries both count as dead.
    pub(crate) fn occupancy(&self) -> ([u64; NUM_CACHE_OPS], u64) {
        let mut per_op = [0u64; NUM_CACHE_OPS];
        let mut total = 0u64;
        for e in &self.entries {
            if e.result != EMPTY && e.gen == self.gen {
                per_op[e.op as usize] += 1;
                total += 1;
            }
        }
        (per_op, total)
    }

    /// Invalidates every entry in O(1).
    pub(crate) fn invalidate_all(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: physically clear so stale entries from
            // 2^32 generations ago cannot resurface.
            for e in &mut self.entries {
                *e = EMPTY_ENTRY;
            }
            self.gen = 1;
        }
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Computed-table traffic for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Computed-table lookups issued by this operation.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Live entries this operation's inserts evicted.
    pub evictions: u64,
}

/// Counters describing the state and workload of a [`BddManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BddManagerStats {
    /// Number of live (reachable or protected) nodes after the last GC, or
    /// total allocated nodes if no GC has run.
    pub live_nodes: usize,
    /// High-water mark of the node pool (see [`BddManager::peak_nodes`]).
    pub peak_nodes: usize,
    /// Total nodes ever created (including reclaimed ones).
    pub created_nodes: u64,
    /// Computed-table lookups (all operations).
    pub cache_lookups: u64,
    /// Computed-table hits (all operations).
    pub cache_hits: u64,
    /// Live computed-table entries evicted by bounded-cache collisions.
    pub cache_evictions: u64,
    /// Number of garbage collections performed.
    pub gc_runs: u64,
    /// Nodes reclaimed across all garbage collections.
    pub gc_reclaimed: u64,
    /// Per-operation computed-table counters, indexed by operation; see
    /// [`per_op`](Self::per_op) for named access.
    pub op_counters: [OpCounters; NUM_CACHE_OPS],
}

impl BddManagerStats {
    /// Per-operation computed-table counters with their names
    /// (`ite`, `and`, `or`, `xor`, `not`, `exists`, `forall`,
    /// `and_exists`, `constrain`).
    pub fn per_op(&self) -> impl Iterator<Item = (&'static str, OpCounters)> + '_ {
        CACHE_OP_NAMES.iter().copied().zip(self.op_counters.iter().copied())
    }
}

// ---------------------------------------------------------------------
// Traversal scratch
// ---------------------------------------------------------------------

/// Epoch-marked scratch shared by every graph walk (`size`, sat
/// counting, save/export, GC marking). A node is "visited this walk" iff
/// `marks[id] == epoch`; starting a new walk is one increment, not an
/// allocation.
#[derive(Debug, Default)]
pub(crate) struct VisitScratch {
    marks: Vec<u32>,
    epoch: u32,
    /// Reusable stack for iterative walks.
    pub(crate) stack: Vec<u32>,
    /// Per-node numeric memo (used by sat counting); `vals[id]` is valid
    /// only when `marks[id]` matches the current epoch.
    pub(crate) vals: Vec<f64>,
}

impl VisitScratch {
    /// Starts a new walk over a graph of `nodes` slots.
    pub(crate) fn begin(&mut self, nodes: usize) {
        if self.marks.len() < nodes {
            self.marks.resize(nodes, self.epoch);
            self.vals.resize(nodes, 0.0);
        }
        if self.epoch == u32::MAX {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
    }

    /// Marks a node; returns `true` on first visit this walk.
    #[inline]
    pub(crate) fn mark(&mut self, id: u32) -> bool {
        let m = &mut self.marks[id as usize];
        if *m == self.epoch {
            false
        } else {
            *m = self.epoch;
            true
        }
    }

    /// Has the node been marked this walk?
    #[inline]
    pub(crate) fn marked(&self, id: u32) -> bool {
        self.marks[id as usize] == self.epoch
    }
}

// ---------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------

/// Owner of all BDD nodes: the unique tables, the computed table, the
/// variable order and the protected-root set.
///
/// Every operation on [`Bdd`] handles is a method on the manager; see the
/// [crate documentation](crate) for an overview and an example.
#[derive(Debug)]
pub struct BddManager {
    /// Node storage. Slots 0 and 1 are the terminals.
    pub(crate) nodes: Vec<Node>,
    /// Free slots available for reuse (filled by GC).
    pub(crate) free: Vec<u32>,
    /// Per-variable unique tables: `(lo, hi) -> node id`.
    pub(crate) tables: Vec<UniqueTable>,
    /// Computed table shared by the memoized recursive operations.
    pub(crate) cache: ComputedCache,
    /// Variable names in creation order.
    var_names: Vec<String>,
    /// Name -> variable lookup.
    name_index: HashMap<String, Var>,
    /// Variable index -> level in the current order.
    pub(crate) var2level: Vec<u32>,
    /// Level -> variable index in the current order.
    pub(crate) level2var: Vec<u32>,
    /// Externally protected roots (id -> protection count).
    pub(crate) protected: HashMap<u32, usize>,
    /// Whether the computed table is consulted (ablation switch A3).
    pub(crate) cache_enabled: bool,
    pub(crate) stats: BddManagerStats,
    /// Shared traversal scratch; `RefCell` so `&self` walks (`size`,
    /// `sat_count`, exports) can reuse it without allocating.
    pub(crate) scratch: RefCell<VisitScratch>,
    /// Resource governor: budget, trip state, allocation transaction log
    /// (see [`crate::governor`]).
    pub(crate) governor: crate::governor::Governor,
    /// Telemetry handle; disabled by default. The manager carries it so
    /// every layer above (kripke, checker, smv) can reach the same
    /// handle without threading it separately.
    pub(crate) tele: smc_obs::Telemetry,
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use smc_bdd::{Bdd, BddManager};
    /// let m = BddManager::new();
    /// assert!(Bdd::TRUE.is_true());
    /// assert_eq!(m.num_vars(), 0);
    /// ```
    pub fn new() -> BddManager {
        BddManager {
            nodes: vec![Node::terminal(), Node::terminal()],
            free: Vec::new(),
            tables: Vec::new(),
            cache: ComputedCache::with_capacity(ComputedCache::DEFAULT_CAPACITY),
            var_names: Vec::new(),
            name_index: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            protected: HashMap::new(),
            cache_enabled: true,
            stats: BddManagerStats::default(),
            scratch: RefCell::new(VisitScratch::default()),
            governor: crate::governor::Governor::default(),
            tele: smc_obs::Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle. The manager emits GC, degradation-
    /// ladder and governor-trip events through it, and higher layers
    /// reach the same handle via [`telemetry`](Self::telemetry).
    pub fn set_telemetry(&mut self, tele: smc_obs::Telemetry) {
        self.tele = tele;
    }

    /// The manager's telemetry handle (cheap to clone; disabled by
    /// default).
    pub fn telemetry(&self) -> &smc_obs::Telemetry {
        &self.tele
    }

    /// A point-in-time counter snapshot in the shape telemetry spans
    /// consume. Cheap relative to [`stats`](Self::stats): copies eight
    /// counters, no per-op table.
    pub fn stats_snapshot(&self) -> smc_obs::StatsSnapshot {
        smc_obs::StatsSnapshot {
            live_nodes: self.num_nodes() as u64,
            peak_nodes: self.nodes.len() as u64,
            created_nodes: self.stats.created_nodes,
            cache_lookups: self.stats.cache_lookups,
            cache_hits: self.stats.cache_hits,
            cache_evictions: self.stats.cache_evictions,
            gc_runs: self.stats.gc_runs,
            gc_reclaimed: self.stats.gc_reclaimed,
        }
    }

    /// Records the manager's counters into a metrics registry: node
    /// gauges, created/GC totals and the per-operation computed-table
    /// counters. Uses absolute (`counter_set`) semantics, so calling it
    /// at end of run makes the manager's own counters authoritative
    /// over anything folded incrementally from the event stream.
    pub fn record_metrics(&self, metrics: &smc_obs::Metrics) {
        if !metrics.enabled() {
            return;
        }
        let stats = self.stats();
        metrics.gauge_set("smc_bdd_live_nodes", &[], stats.live_nodes as f64);
        metrics.gauge_set("smc_bdd_peak_nodes", &[], stats.peak_nodes as f64);
        metrics.counter_set("smc_bdd_created_nodes_total", &[], stats.created_nodes);
        metrics.counter_set("smc_gc_runs_total", &[], stats.gc_runs);
        metrics.counter_set("smc_gc_reclaimed_nodes_total", &[], stats.gc_reclaimed);
        for (op, c) in stats.per_op() {
            let labels = [("op", op)];
            metrics.counter_set("smc_cache_lookups_total", &labels, c.lookups);
            metrics.counter_set("smc_cache_hits_total", &labels, c.hits);
            metrics.counter_set("smc_cache_evictions_total", &labels, c.evictions);
        }
        // Heap structure series (deep scan — fine here, end-of-run).
        let unique = self.unique_health();
        if unique.entries > 0 {
            metrics.gauge_set("smc_bdd_table_load", &[], unique.load);
            metrics.gauge_set("smc_bdd_longest_probe", &[], unique.longest_probe as f64);
            for (d, &count) in unique.probe_hist.iter().enumerate() {
                for _ in 0..count {
                    metrics.observe("smc_bdd_probe_length", &[], d as u64);
                }
            }
        }
        for (level, &var) in self.level2var.iter().enumerate() {
            let label = level.to_string();
            metrics.gauge_set(
                "smc_bdd_level_nodes",
                &[("level", label.as_str())],
                self.tables[var as usize].len() as f64,
            );
        }
    }

    /// Declares a fresh variable at the bottom of the current order.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::DuplicateVarName`] if a variable with the same
    /// name already exists.
    pub fn new_var(&mut self, name: &str) -> Result<Var, BddError> {
        if self.name_index.contains_key(name) {
            return Err(BddError::DuplicateVarName(name.to_string()));
        }
        let var = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.name_index.insert(name.to_string(), var);
        self.var2level.push(self.level2var.len() as u32);
        self.level2var.push(var.0);
        self.tables.push(UniqueTable::new());
        Ok(var)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The name a variable was declared with.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn var_name(&self, var: Var) -> &str {
        &self.var_names[var.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.name_index.get(name).copied()
    }

    /// Current level (position in the order, 0 = top) of a variable.
    pub fn level_of_var(&self, var: Var) -> usize {
        self.var2level[var.index()] as usize
    }

    /// The variable currently at a given level of the order.
    pub fn var_at_level(&self, level: usize) -> Var {
        Var(self.level2var[level])
    }

    /// The projection function for `var` (the BDD of the formula "`var`").
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn var(&mut self, var: Var) -> Bdd {
        assert!(var.index() < self.num_vars(), "unknown variable {var}");
        self.mk(var.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated projection function for `var` (the BDD of "`¬var`").
    pub fn nvar(&mut self, var: Var) -> Bdd {
        assert!(var.index() < self.num_vars(), "unknown variable {var}");
        self.mk(var.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: `var` if `positive`, else `¬var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> Bdd {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The constant for a boolean value.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Hash-consing constructor. Maintains the reduced, ordered invariants:
    /// never creates a node with equal children, never duplicates a node.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level(lo) > self.var2level[var as usize]
                && self.level(hi) > self.var2level[var as usize],
            "mk would violate variable order"
        );
        if let Some(id) = self.tables[var as usize].get(lo, hi) {
            return Bdd(id);
        }
        let governed = self.governor.active && !self.governor.suspended;
        if governed && self.governor.tripped.is_some() {
            // Tripped: allocate nothing, hand back a valid dummy handle.
            // The caller stack unwinds via the op-entry gates and the
            // next check_budget()/checkpoint() surfaces the error.
            return lo;
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { var, lo, hi };
                slot
            }
            None => {
                let id = self.nodes.len() as u32;
                if id == u32::MAX {
                    // Node ids are u32; instead of dying, trip the
                    // governor (even an unbudgeted manager surfaces this
                    // as ResourceExhausted(TableFull) at the next poll).
                    self.governor.tripped = Some(crate::governor::TripReason::TableFull);
                    self.governor.active = true;
                    return lo;
                }
                self.nodes.push(Node { var, lo, hi });
                id
            }
        };
        self.tables[var as usize].insert(lo, hi, id);
        self.stats.created_nodes += 1;
        if governed {
            self.note_alloc(id);
        }
        Bdd(id)
    }

    /// The node behind a handle (copy).
    #[inline]
    pub(crate) fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// Level of the root variable of `b`; `u32::MAX` for terminals.
    #[inline]
    pub(crate) fn level(&self, b: Bdd) -> u32 {
        let v = self.nodes[b.0 as usize].var;
        if v == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[v as usize]
        }
    }

    /// The root variable of a non-terminal BDD.
    pub fn var_of(&self, b: Bdd) -> Option<Var> {
        let v = self.nodes[b.0 as usize].var;
        if v == TERMINAL_VAR {
            None
        } else {
            Some(Var(v))
        }
    }

    /// The low (`var = 0`) child of a non-terminal BDD.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a terminal.
    pub fn low(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "terminal has no children");
        self.nodes[b.0 as usize].lo
    }

    /// The high (`var = 1`) child of a non-terminal BDD.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a terminal.
    pub fn high(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "terminal has no children");
        self.nodes[b.0 as usize].hi
    }

    /// Evaluates `b` under a total assignment indexed by variable index.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the highest variable index
    /// occurring in `b`.
    pub fn eval(&self, b: Bdd, assignment: &[bool]) -> bool {
        let mut cur = b;
        loop {
            match cur {
                Bdd::FALSE => return false,
                Bdd::TRUE => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment[n.var as usize] { n.hi } else { n.lo };
                }
            }
        }
    }

    /// Number of decision nodes in the (shared) graph of `b`, excluding
    /// terminals. The size measure used throughout the literature.
    pub fn size(&self, b: Bdd) -> usize {
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        scratch.begin(self.nodes.len());
        let mut count = 0;
        if !b.is_const() {
            scratch.stack.push(b.0);
        }
        while let Some(top) = scratch.stack.pop() {
            if !scratch.mark(top) {
                continue;
            }
            count += 1;
            let n = self.nodes[top as usize];
            if !n.lo.is_const() {
                scratch.stack.push(n.lo.0);
            }
            if !n.hi.is_const() {
                scratch.stack.push(n.hi.0);
            }
        }
        count
    }

    /// Total live nodes in the manager (all unique-table entries).
    pub fn num_nodes(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum::<usize>() + 2
    }

    /// High-water mark of the node pool: the largest number of node slots
    /// ever simultaneously allocated (GC recycles slots, so this only
    /// grows when live data outgrew every previous peak).
    pub fn peak_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Protects a root from garbage collection. Protection is counted:
    /// protect twice, unprotect twice.
    pub fn protect(&mut self, b: Bdd) {
        *self.protected.entry(b.0).or_insert(0) += 1;
    }

    /// Removes one level of protection from a root.
    ///
    /// Unprotecting a handle that is not protected is a no-op.
    pub fn unprotect(&mut self, b: Bdd) {
        if let Some(count) = self.protected.get_mut(&b.0) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&b.0);
            }
        }
    }

    /// Enables or disables the computed table (ablation switch; on by
    /// default). Disabling makes every recursive operation exponential and
    /// exists only to quantify the value of memoization.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.invalidate_all();
        }
    }

    /// Resizes the bounded computed table to approximately `entries`
    /// slots (rounded to the implementation's set geometry; minimum 1).
    /// Existing memoized results are dropped. A 1-entry cache is the
    /// maximally-evicting configuration used by the ablation tests.
    pub fn set_cache_capacity(&mut self, entries: usize) {
        self.cache = ComputedCache::with_capacity(entries.max(1));
    }

    /// Current computed-table capacity in entries.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Drops every memoized result. Invoked internally by GC and reorder;
    /// O(1) — the bounded table is invalidated by a generation bump.
    pub fn clear_cache(&mut self) {
        self.cache.invalidate_all();
    }

    /// Workload statistics counters.
    pub fn stats(&self) -> BddManagerStats {
        let mut s = self.stats;
        s.live_nodes = self.num_nodes();
        s.peak_nodes = self.nodes.len();
        s
    }

    #[inline]
    pub(crate) fn cache_get(&mut self, key: CacheKey) -> Option<Bdd> {
        if !self.cache_enabled {
            return None;
        }
        let op = &mut self.stats.op_counters[key.0 as usize];
        op.lookups += 1;
        self.stats.cache_lookups += 1;
        let hit = self.cache.get(&key);
        if hit.is_some() {
            self.stats.op_counters[key.0 as usize].hits += 1;
            self.stats.cache_hits += 1;
        }
        hit
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: CacheKey, value: Bdd) {
        if self.governor.active && self.governor.tripped.is_some() {
            // A tripped computation yields dummy handles; caching them
            // would poison future (post-recovery) lookups.
            return;
        }
        if self.cache_enabled && self.cache.put(&key, value) {
            self.stats.op_counters[key.0 as usize].evictions += 1;
            self.stats.cache_evictions += 1;
        }
    }
}

impl Default for BddManager {
    fn default() -> BddManager {
        BddManager::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod table_tests {
    use super::*;

    #[test]
    fn unique_table_insert_get_remove() {
        let mut t = UniqueTable::new();
        for i in 0..1000u32 {
            t.insert(Bdd(i), Bdd(i + 1), i + 2);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(t.get(Bdd(i), Bdd(i + 1)), Some(i + 2));
        }
        assert_eq!(t.get(Bdd(5), Bdd(5)), None);
        // Remove every third entry; the rest must stay reachable
        // (exercises backward-shift deletion across probe chains).
        for i in (0..1000u32).step_by(3) {
            assert_eq!(t.remove(Bdd(i), Bdd(i + 1)), Some(i + 2));
        }
        for i in 0..1000u32 {
            let expect = if i % 3 == 0 { None } else { Some(i + 2) };
            assert_eq!(t.get(Bdd(i), Bdd(i + 1)), expect, "key {i}");
        }
        assert_eq!(t.remove(Bdd(0), Bdd(1)), None);
    }

    #[test]
    fn unique_table_retain() {
        let mut t = UniqueTable::new();
        for i in 0..100u32 {
            t.insert(Bdd(i), Bdd(i + 1), i);
        }
        t.retain_ids(|id| id % 2 == 0);
        assert_eq!(t.len(), 50);
        for i in 0..100u32 {
            let expect = if i % 2 == 0 { Some(i) } else { None };
            assert_eq!(t.get(Bdd(i), Bdd(i + 1)), expect);
        }
    }

    #[test]
    fn computed_cache_bounded_and_generational() {
        let mut c = ComputedCache::with_capacity(64);
        let key = |i: u32| (CacheOp::And, i, i + 1, 0);
        for i in 0..64 {
            c.put(&key(i), Bdd(i));
        }
        // Bounded: some entries may have been evicted, but any reported
        // hit must be exact.
        for i in 0..64 {
            if let Some(v) = c.get(&key(i)) {
                assert_eq!(v, Bdd(i));
            }
        }
        c.invalidate_all();
        for i in 0..64 {
            assert_eq!(c.get(&key(i)), None, "stale hit after invalidation");
        }
    }

    #[test]
    fn computed_cache_single_entry_evicts() {
        let mut c = ComputedCache::with_capacity(1);
        assert_eq!(c.capacity(), 1);
        let k1 = (CacheOp::And, 2, 3, 0);
        let k2 = (CacheOp::Or, 2, 3, 0);
        assert!(!c.put(&k1, Bdd(7)));
        assert_eq!(c.get(&k1), Some(Bdd(7)));
        assert!(c.put(&k2, Bdd(8)), "second insert must evict");
        assert_eq!(c.get(&k1), None);
        assert_eq!(c.get(&k2), Some(Bdd(8)));
    }
}
