//! The BDD manager: node storage, hash-consing, and bookkeeping.

use std::collections::HashMap;

use crate::error::BddError;
use crate::node::{Bdd, Node, Var, TERMINAL_VAR};

/// Operation tags for the computed table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CacheOp {
    Ite,
    Exists,
    Forall,
    AndExists,
    Constrain,
}

pub(crate) type CacheKey = (CacheOp, u32, u32, u32);

/// Counters describing the state and workload of a [`BddManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BddManagerStats {
    /// Number of live (reachable or protected) nodes after the last GC, or
    /// total allocated nodes if no GC has run.
    pub live_nodes: usize,
    /// Total nodes ever created (including reclaimed ones).
    pub created_nodes: u64,
    /// Computed-table lookups.
    pub cache_lookups: u64,
    /// Computed-table hits.
    pub cache_hits: u64,
    /// Number of garbage collections performed.
    pub gc_runs: u64,
    /// Nodes reclaimed across all garbage collections.
    pub gc_reclaimed: u64,
}

/// Owner of all BDD nodes: the unique tables, the computed table, the
/// variable order and the protected-root set.
///
/// Every operation on [`Bdd`] handles is a method on the manager; see the
/// [crate documentation](crate) for an overview and an example.
#[derive(Debug)]
pub struct BddManager {
    /// Node storage. Slots 0 and 1 are the terminals.
    pub(crate) nodes: Vec<Node>,
    /// Free slots available for reuse (filled by GC).
    pub(crate) free: Vec<u32>,
    /// Per-variable unique tables: `(lo, hi) -> node id`.
    pub(crate) tables: Vec<HashMap<(Bdd, Bdd), u32>>,
    /// Computed table shared by the memoized recursive operations.
    pub(crate) cache: HashMap<CacheKey, Bdd>,
    /// Variable names in creation order.
    var_names: Vec<String>,
    /// Name -> variable lookup.
    name_index: HashMap<String, Var>,
    /// Variable index -> level in the current order.
    pub(crate) var2level: Vec<u32>,
    /// Level -> variable index in the current order.
    pub(crate) level2var: Vec<u32>,
    /// Externally protected roots (id -> protection count).
    pub(crate) protected: HashMap<u32, usize>,
    /// Whether the computed table is consulted (ablation switch A3).
    pub(crate) cache_enabled: bool,
    pub(crate) stats: BddManagerStats,
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use smc_bdd::{Bdd, BddManager};
    /// let m = BddManager::new();
    /// assert!(Bdd::TRUE.is_true());
    /// assert_eq!(m.num_vars(), 0);
    /// ```
    pub fn new() -> BddManager {
        BddManager {
            nodes: vec![Node::terminal(), Node::terminal()],
            free: Vec::new(),
            tables: Vec::new(),
            cache: HashMap::new(),
            var_names: Vec::new(),
            name_index: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            protected: HashMap::new(),
            cache_enabled: true,
            stats: BddManagerStats::default(),
        }
    }

    /// Declares a fresh variable at the bottom of the current order.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::DuplicateVarName`] if a variable with the same
    /// name already exists.
    pub fn new_var(&mut self, name: &str) -> Result<Var, BddError> {
        if self.name_index.contains_key(name) {
            return Err(BddError::DuplicateVarName(name.to_string()));
        }
        let var = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.name_index.insert(name.to_string(), var);
        self.var2level.push(self.level2var.len() as u32);
        self.level2var.push(var.0);
        self.tables.push(HashMap::new());
        Ok(var)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The name a variable was declared with.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn var_name(&self, var: Var) -> &str {
        &self.var_names[var.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.name_index.get(name).copied()
    }

    /// Current level (position in the order, 0 = top) of a variable.
    pub fn level_of_var(&self, var: Var) -> usize {
        self.var2level[var.index()] as usize
    }

    /// The variable currently at a given level of the order.
    pub fn var_at_level(&self, level: usize) -> Var {
        Var(self.level2var[level])
    }

    /// The projection function for `var` (the BDD of the formula "`var`").
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn var(&mut self, var: Var) -> Bdd {
        assert!(var.index() < self.num_vars(), "unknown variable {var}");
        self.mk(var.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated projection function for `var` (the BDD of "`¬var`").
    pub fn nvar(&mut self, var: Var) -> Bdd {
        assert!(var.index() < self.num_vars(), "unknown variable {var}");
        self.mk(var.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: `var` if `positive`, else `¬var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> Bdd {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The constant for a boolean value.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Hash-consing constructor. Maintains the reduced, ordered invariants:
    /// never creates a node with equal children, never duplicates a node.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level(lo) > self.var2level[var as usize]
                && self.level(hi) > self.var2level[var as usize],
            "mk would violate variable order"
        );
        if let Some(&id) = self.tables[var as usize].get(&(lo, hi)) {
            return Bdd(id);
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { var, lo, hi };
                slot
            }
            None => {
                let id = self.nodes.len() as u32;
                assert!(id != u32::MAX, "bdd node table is full");
                self.nodes.push(Node { var, lo, hi });
                id
            }
        };
        self.tables[var as usize].insert((lo, hi), id);
        self.stats.created_nodes += 1;
        Bdd(id)
    }

    /// The node behind a handle (copy).
    #[inline]
    pub(crate) fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// Level of the root variable of `b`; `u32::MAX` for terminals.
    #[inline]
    pub(crate) fn level(&self, b: Bdd) -> u32 {
        let v = self.nodes[b.0 as usize].var;
        if v == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[v as usize]
        }
    }

    /// The root variable of a non-terminal BDD.
    pub fn var_of(&self, b: Bdd) -> Option<Var> {
        let v = self.nodes[b.0 as usize].var;
        if v == TERMINAL_VAR {
            None
        } else {
            Some(Var(v))
        }
    }

    /// The low (`var = 0`) child of a non-terminal BDD.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a terminal.
    pub fn low(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "terminal has no children");
        self.nodes[b.0 as usize].lo
    }

    /// The high (`var = 1`) child of a non-terminal BDD.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a terminal.
    pub fn high(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "terminal has no children");
        self.nodes[b.0 as usize].hi
    }

    /// Evaluates `b` under a total assignment indexed by variable index.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the highest variable index
    /// occurring in `b`.
    pub fn eval(&self, b: Bdd, assignment: &[bool]) -> bool {
        let mut cur = b;
        loop {
            match cur {
                Bdd::FALSE => return false,
                Bdd::TRUE => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment[n.var as usize] { n.hi } else { n.lo };
                }
            }
        }
    }

    /// Number of decision nodes in the (shared) graph of `b`, excluding
    /// terminals. The size measure used throughout the literature.
    pub fn size(&self, b: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![b];
        let mut count = 0;
        while let Some(top) = stack.pop() {
            if top.is_const() || !seen.insert(top) {
                continue;
            }
            count += 1;
            let n = self.node(top);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Total live nodes in the manager (all unique-table entries).
    pub fn num_nodes(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum::<usize>() + 2
    }

    /// Protects a root from garbage collection. Protection is counted:
    /// protect twice, unprotect twice.
    pub fn protect(&mut self, b: Bdd) {
        *self.protected.entry(b.0).or_insert(0) += 1;
    }

    /// Removes one level of protection from a root.
    ///
    /// Unprotecting a handle that is not protected is a no-op.
    pub fn unprotect(&mut self, b: Bdd) {
        if let Some(count) = self.protected.get_mut(&b.0) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&b.0);
            }
        }
    }

    /// Enables or disables the computed table (ablation switch; on by
    /// default). Disabling makes every recursive operation exponential and
    /// exists only to quantify the value of memoization.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
    }

    /// Drops every memoized result. Invoked internally by GC and reorder.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Workload statistics counters.
    pub fn stats(&self) -> BddManagerStats {
        let mut s = self.stats;
        s.live_nodes = self.num_nodes();
        s
    }

    #[inline]
    pub(crate) fn cache_get(&mut self, key: CacheKey) -> Option<Bdd> {
        if !self.cache_enabled {
            return None;
        }
        self.stats.cache_lookups += 1;
        let hit = self.cache.get(&key).copied();
        if hit.is_some() {
            self.stats.cache_hits += 1;
        }
        hit
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: CacheKey, value: Bdd) {
        if self.cache_enabled {
            self.cache.insert(key, value);
        }
    }
}

impl Default for BddManager {
    fn default() -> BddManager {
        BddManager::new()
    }
}
