//! Deterministic fault injection for the governor's recovery paths.
//!
//! Compiled only for tests (`cfg(test)`) or under the `fault-injection`
//! feature; release builds of the library carry none of these hooks.
//!
//! A [`FaultPlan`] arms up to three failure modes against a manager:
//!
//! * **Table full** at the Nth allocation — trips
//!   [`TripReason::TableFull`](crate::TripReason::TableFull) exactly as
//!   if the node table had overflowed.
//! * **Spurious cancellation** at the Nth allocation — trips
//!   [`TripReason::Cancelled`](crate::TripReason::Cancelled) without any
//!   token being cancelled.
//! * **Cache wipes** every Kth allocation — invalidates the computed
//!   table, exercising recomputation paths (results must not change:
//!   recomputed subresults re-find their nodes in the unique tables).
//!
//! Allocation counts are measured from the moment the plan is injected
//! and each trigger fires at most once, so a rolled-back-and-retried
//! query does not re-fault. Plans can also be derived from a seed with
//! [`FaultPlan::seeded`] for randomized-but-reproducible campaigns.

use crate::governor::TripReason;
use crate::manager::BddManager;

/// A deterministic schedule of injected faults (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Trip `TableFull` at this allocation (1-based, counted from
    /// injection).
    pub table_full_at: Option<u64>,
    /// Trip `Cancelled` at this allocation (1-based, counted from
    /// injection).
    pub cancel_at: Option<u64>,
    /// Invalidate the computed cache every this-many allocations.
    pub wipe_cache_every: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (arms the governor's hooks but injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives a pseudo-random plan from `seed`: one fault (table-full,
    /// cancellation, or periodic cache wipes) at an allocation count in
    /// `1..=horizon`.
    pub fn seeded(seed: u64, horizon: u64) -> FaultPlan {
        let horizon = horizon.max(1);
        let a = crate::manager::mix64(seed);
        let b = crate::manager::mix64(a);
        let at = 1 + b % horizon;
        let mut plan = FaultPlan::new();
        match a % 3 {
            0 => plan.table_full_at = Some(at),
            1 => plan.cancel_at = Some(at),
            _ => plan.wipe_cache_every = Some(at),
        }
        plan
    }

    /// A reproducible fault campaign: `rounds` plans derived from
    /// `seed`, each arming one fault at an allocation count in
    /// `1..=horizon`. The service drills iterate one of these against a
    /// long-running process, asserting it answers every request (some as
    /// `Exhausted`) and never dies.
    pub fn campaign(seed: u64, rounds: usize, horizon: u64) -> Vec<FaultPlan> {
        (0..rounds as u64)
            .map(|round| {
                FaultPlan::seeded(crate::manager::mix64(seed ^ round.wrapping_mul(0x9e37)), horizon)
            })
            .collect()
    }
}

/// Armed fault triggers, stored against absolute allocation counts so
/// rollbacks (which never rewind the allocation odometer) cannot re-arm
/// them.
#[derive(Debug)]
pub(crate) struct FaultState {
    table_full_at: Option<u64>,
    cancel_at: Option<u64>,
    wipe_every: Option<u64>,
    next_wipe: u64,
}

impl BddManager {
    /// Installs a fault plan, converting its relative allocation counts
    /// to absolute trigger points. Replaces any previous plan.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let base = self.governor.allocs;
        let wipe = plan.wipe_cache_every.filter(|&k| k > 0);
        self.governor.faults = Some(FaultState {
            table_full_at: plan.table_full_at.map(|n| base + n.max(1)),
            cancel_at: plan.cancel_at.map(|n| base + n.max(1)),
            wipe_every: wipe,
            next_wipe: wipe.map(|k| base + k).unwrap_or(u64::MAX),
        });
        self.governor.active = true;
    }

    /// Removes the fault plan (pending budget/trip state is untouched).
    pub fn clear_faults(&mut self) {
        self.governor.faults = None;
        if self.governor.budget.is_none() && self.governor.tripped.is_none() {
            self.governor.active = false;
        }
    }

    /// Called from allocation bookkeeping; fires any trigger whose
    /// allocation count has arrived. Triggers are one-shot.
    pub(crate) fn fault_hooks_on_alloc(&mut self) {
        let allocs = self.governor.allocs;
        let Some(faults) = self.governor.faults.as_mut() else { return };
        let mut wipe = false;
        if faults.next_wipe <= allocs {
            wipe = true;
            let step = faults.wipe_every.unwrap_or(u64::MAX);
            faults.next_wipe = allocs.saturating_add(step);
        }
        let mut trip = None;
        if faults.table_full_at.is_some_and(|at| allocs >= at) {
            faults.table_full_at = None;
            trip = Some(TripReason::TableFull);
        }
        if faults.cancel_at.is_some_and(|at| allocs >= at) {
            faults.cancel_at = None;
            trip.get_or_insert(TripReason::Cancelled);
        }
        if wipe {
            self.cache.invalidate_all();
        }
        if let Some(reason) = trip {
            if self.governor.tripped.is_none() {
                self.governor.tripped = Some(reason);
            }
        }
    }
}
