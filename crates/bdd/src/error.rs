//! Error type for the OBDD package.

use std::error::Error;
use std::fmt;

/// Errors reported by [`BddManager`](crate::BddManager) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable with this name already exists in the manager.
    DuplicateVarName(String),
    /// The manager ran out of node ids (more than `u32::MAX - 2` live
    /// nodes were requested).
    TableFull,
    /// A reorder request did not mention every variable exactly once.
    InvalidOrder(String),
    /// A governed computation hit its budget (or an injected fault); see
    /// [`TripReason`](crate::TripReason) for what tripped. Delivered by
    /// [`BddManager::check_budget`](crate::BddManager::check_budget) and
    /// [`BddManager::checkpoint`](crate::BddManager::checkpoint) after the
    /// allocation transaction has been rolled back.
    ResourceExhausted(crate::governor::TripReason),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::DuplicateVarName(name) => {
                write!(f, "variable named {name:?} already exists")
            }
            BddError::TableFull => write!(f, "bdd node table is full"),
            BddError::InvalidOrder(msg) => write!(f, "invalid variable order: {msg}"),
            BddError::ResourceExhausted(reason) => {
                write!(f, "resource budget exhausted: {reason}")
            }
        }
    }
}

impl Error for BddError {}
