//! Dynamic variable reordering: in-place adjacent-level swap, Rudell-style
//! sifting, and reordering to an explicit target order.
//!
//! The swap rewrites nodes **in place**, so every existing [`Bdd`] handle
//! keeps denoting the same boolean function across reorders — callers never
//! need to re-translate handles.

use crate::error::BddError;
use crate::manager::BddManager;
use crate::node::{Bdd, Node, Var};

impl BddManager {
    /// Swaps the variables at levels `level` and `level + 1`.
    ///
    /// Classic Rudell adjacent exchange: only nodes at `level` whose
    /// children are rooted at `level + 1` are rewritten; everything else is
    /// untouched. Node ids are stable and keep their meaning.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_levels(&mut self, level: usize) {
        assert!(level + 1 < self.num_vars(), "swap_levels: level {level} out of range");
        // A half-applied swap would corrupt the manager, so the governor
        // is suspended for its duration: `mk` neither bails on a trip nor
        // logs allocations (rolling back an in-place-rewired node would
        // free a load-bearing slot). The swap is a safe point, so the
        // current transaction commits first.
        self.txn_commit();
        let was_suspended = self.governor.suspended;
        self.governor.suspended = true;
        let u = self.level2var[level]; // variable moving down
        let w = self.level2var[level + 1]; // variable moving up

        // Snapshot the ids at the upper level before mutating anything.
        let upper_ids: Vec<u32> = self.tables[u as usize].ids();

        // Update the order first so `mk` (which debug-asserts ordering)
        // sees the new levels.
        self.level2var.swap(level, level + 1);
        self.var2level[u as usize] = (level + 1) as u32;
        self.var2level[w as usize] = level as u32;

        for id in upper_ids {
            let n = self.nodes[id as usize];
            debug_assert_eq!(n.var, u);
            let lo_is_w = self.nodes[n.lo.0 as usize].var == w;
            let hi_is_w = self.nodes[n.hi.0 as usize].var == w;
            if !lo_is_w && !hi_is_w {
                // The function does not depend on w; the node keeps its
                // variable (which simply lives one level lower now).
                continue;
            }
            // f = ¬u·A + u·B with w occurring at the root of A and/or B.
            let (a0, a1) = if lo_is_w {
                let a = self.nodes[n.lo.0 as usize];
                (a.lo, a.hi)
            } else {
                (n.lo, n.lo)
            };
            let (b0, b1) = if hi_is_w {
                let b = self.nodes[n.hi.0 as usize];
                (b.lo, b.hi)
            } else {
                (n.hi, n.hi)
            };
            // New root variable w: f|w=0 = ¬u·A0 + u·B0, f|w=1 = ¬u·A1 + u·B1.
            let lo = self.mk(u, a0, b0);
            let hi = self.mk(u, a1, b1);
            debug_assert_ne!(lo, hi, "swap produced a redundant node");
            self.tables[u as usize].remove(n.lo, n.hi);
            self.nodes[id as usize] = Node { var: w, lo, hi };
            debug_assert!(
                self.tables[w as usize].get(lo, hi).is_none(),
                "swap produced a duplicate node"
            );
            self.tables[w as usize].insert(lo, hi, id);
        }
        // Memoized results depend on levels; they are now stale. The
        // generational bounded cache invalidates in O(1).
        self.cache.invalidate_all();
        self.governor.suspended = was_suspended;
    }

    /// Reorders the variables to exactly `order` (top to bottom) by a
    /// sequence of adjacent swaps. Handles remain valid.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidOrder`] unless `order` is a permutation
    /// of all declared variables.
    pub fn reorder(&mut self, order: &[Var]) -> Result<(), BddError> {
        let n = self.num_vars();
        if order.len() != n {
            return Err(BddError::InvalidOrder(format!(
                "expected {n} variables, got {}",
                order.len()
            )));
        }
        let mut seen = vec![false; n];
        for v in order {
            if v.index() >= n || seen[v.index()] {
                return Err(BddError::InvalidOrder(format!(
                    "variable {v} missing, duplicated or unknown"
                )));
            }
            seen[v.index()] = true;
        }
        // Selection-sort with adjacent swaps: bubble each target variable
        // up to its final level.
        for (target_level, &var) in order.iter().enumerate() {
            let mut cur = self.level_of_var(var);
            while cur > target_level {
                self.swap_levels(cur - 1);
                cur -= 1;
            }
        }
        self.debug_validate("reorder");
        Ok(())
    }

    /// Rudell sifting: moves each variable through every level, keeping
    /// the position minimizing the live node count, processing variables
    /// in decreasing order of their unique-table population.
    ///
    /// `roots` are the BDDs to keep live (they are also protected for the
    /// duration); a garbage collection runs before each variable's pass so
    /// the counts reflect live nodes. Returns the final live node count.
    pub fn sift(&mut self, roots: &[Bdd]) -> usize {
        let n = self.num_vars();
        if n < 2 {
            return self.num_nodes();
        }
        let mut vars: Vec<Var> = (0..n).map(|i| Var(i as u32)).collect();
        vars.sort_by_key(|v| std::cmp::Reverse(self.tables[v.index()].len()));
        for var in vars {
            self.gc(roots);
            let start_level = self.level_of_var(var);
            let mut best_level = start_level;
            let mut best_count = self.num_nodes();
            // Sweep to the bottom... (collect after every swap so the
            // count reflects live nodes, not swap debris)
            let mut level = start_level;
            while level + 1 < n {
                self.swap_levels(level);
                self.gc(roots);
                level += 1;
                let count = self.num_nodes();
                if count < best_count {
                    best_count = count;
                    best_level = level;
                }
            }
            // ...then to the top...
            while level > 0 {
                self.swap_levels(level - 1);
                self.gc(roots);
                level -= 1;
                let count = self.num_nodes();
                if count < best_count {
                    best_count = count;
                    best_level = level;
                }
            }
            // ...and settle at the best position seen.
            while level < best_level {
                self.swap_levels(level);
                level += 1;
            }
        }
        self.gc(roots);
        self.debug_validate("sift");
        self.num_nodes()
    }
}
