//! Satisfying-assignment extraction: one witness assignment, model
//! counting, and exhaustive cube enumeration.
//!
//! Witness generation repeatedly needs "pick an arbitrary element of this
//! state set" (Section 6 of the paper: *"choosing an arbitrary element of
//! the resulting set"*); [`BddManager::one_sat`] provides it in time linear
//! in the number of variables.

use crate::manager::{BddManager, VisitScratch};
use crate::node::{Bdd, Var};

/// A (partial) satisfying assignment: the variables on one root-to-`true`
/// path of a BDD together with their polarities. Variables not mentioned
/// are don't-cares.
pub type SatAssignment = Vec<(Var, bool)>;

impl BddManager {
    /// One satisfying partial assignment of `f`, or `None` if `f` is
    /// unsatisfiable. Prefers the low branch, so the returned assignment
    /// is the lexicographically least path in the diagram.
    pub fn one_sat(&self, f: Bdd) -> Option<SatAssignment> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            if !n.lo.is_false() {
                path.push((Var(n.var), false));
                cur = n.lo;
            } else {
                path.push((Var(n.var), true));
                cur = n.hi;
            }
        }
        debug_assert!(cur.is_true());
        Some(path)
    }

    /// A *total* satisfying assignment of `f` over the variables in
    /// `vars`, or `None` if `f` is unsatisfiable. Don't-care variables are
    /// assigned `false`.
    ///
    /// This is the "pick one concrete state" primitive the witness
    /// generator uses to print actual states.
    pub fn one_sat_total(&self, f: Bdd, vars: &[Var]) -> Option<Vec<bool>> {
        let partial = self.one_sat(f)?;
        let mut dense = vec![false; self.num_vars()];
        for (v, val) in partial {
            dense[v.index()] = val;
        }
        Some(vars.iter().map(|v| dense[v.index()]).collect())
    }

    /// The number of satisfying assignments of `f` over `nvars` variables.
    ///
    /// Returned as `f64` because symbolic models routinely exceed `u64`
    /// range; exact for counts below 2^53. `nvars` must be at least the
    /// number of levels spanned by `f`'s support.
    pub fn sat_count(&self, f: Bdd, nvars: usize) -> f64 {
        let nlevels = self.num_vars() as i32;
        // `count_rec(f)` counts over the levels in [level(f), nlevels);
        // scale up for the levels skipped above the root, then normalize
        // from the manager's variable count to the requested one. The
        // per-node memo lives in the manager's epoch-marked scratch, so
        // repeated counts allocate nothing.
        let mut scratch = self.scratch.borrow_mut();
        let sc = &mut *scratch;
        sc.begin(self.nodes.len());
        let c = self.count_rec(f, sc);
        let top = self.level(f).min(nlevels as u32) as i32;
        c * 2f64.powi(top) * 2f64.powi(nvars as i32 - nlevels)
    }

    fn count_rec(&self, f: Bdd, sc: &mut VisitScratch) -> f64 {
        // Number of satisfying assignments over levels [level(f), nlevels).
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if sc.marked(f.0) {
            return sc.vals[f.0 as usize];
        }
        let nlevels = self.num_vars() as u32;
        let n = self.node(f);
        let lvl = self.level(f) as i32;
        let lo_lvl = self.level(n.lo).min(nlevels) as i32;
        let hi_lvl = self.level(n.hi).min(nlevels) as i32;
        let lo = self.count_rec(n.lo, sc) * 2f64.powi(lo_lvl - lvl - 1);
        let hi = self.count_rec(n.hi, sc) * 2f64.powi(hi_lvl - lvl - 1);
        let result = lo + hi;
        sc.mark(f.0);
        sc.vals[f.0 as usize] = result;
        result
    }

    /// Iterates over the satisfying paths (cubes) of `f`.
    ///
    /// Each item is a partial assignment; unlisted variables are
    /// don't-cares. The cubes are disjoint and their union is exactly `f`.
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        let stack = if f.is_false() { Vec::new() } else { vec![(f, Vec::new())] };
        CubeIter { manager: self, stack }
    }
}

/// Iterator over the satisfying cubes of a BDD; see
/// [`BddManager::cubes`].
#[derive(Debug)]
pub struct CubeIter<'a> {
    manager: &'a BddManager,
    stack: Vec<(Bdd, SatAssignment)>,
}

impl Iterator for CubeIter<'_> {
    type Item = SatAssignment;

    fn next(&mut self) -> Option<SatAssignment> {
        while let Some((node, path)) = self.stack.pop() {
            if node.is_true() {
                return Some(path);
            }
            if node.is_false() {
                continue;
            }
            let n = self.manager.node(node);
            if !n.hi.is_false() {
                let mut hi_path = path.clone();
                hi_path.push((Var(n.var), true));
                self.stack.push((n.hi, hi_path));
            }
            if !n.lo.is_false() {
                let mut lo_path = path;
                lo_path.push((Var(n.var), false));
                self.stack.push((n.lo, lo_path));
            }
        }
        None
    }
}
