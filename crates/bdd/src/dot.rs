//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::manager::BddManager;
use crate::node::Bdd;

impl BddManager {
    /// Renders the shared graph of the given roots as Graphviz DOT text.
    ///
    /// Solid edges are `high` (variable = 1) children, dashed edges are
    /// `low` children; roots are annotated with their handle ids.
    pub fn to_dot(&self, roots: &[Bdd]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node [shape=circle];\n");
        out.push_str("  f [label=\"0\", shape=box];\n");
        out.push_str("  t [label=\"1\", shape=box];\n");
        let mut scratch = self.scratch.borrow_mut();
        let sc = &mut *scratch;
        sc.begin(self.nodes.len());
        sc.stack.extend(roots.iter().map(|b| b.0));
        for (i, r) in roots.iter().enumerate() {
            let _ = writeln!(out, "  root{i} [label=\"root {i}\", shape=plaintext];");
            let _ = writeln!(out, "  root{i} -> {};", dot_id(*r));
        }
        while let Some(id) = sc.stack.pop() {
            let b = Bdd(id);
            if b.is_const() || !sc.mark(id) {
                continue;
            }
            let n = self.node(b);
            let name = self.var_name(crate::Var(n.var));
            let _ = writeln!(out, "  {} [label=\"{}\"];", dot_id(b), escape(name));
            let _ = writeln!(out, "  {} -> {} [style=dashed];", dot_id(b), dot_id(n.lo));
            let _ = writeln!(out, "  {} -> {};", dot_id(b), dot_id(n.hi));
            sc.stack.push(n.lo.0);
            sc.stack.push(n.hi.0);
        }
        out.push_str("}\n");
        out
    }
}

fn dot_id(b: Bdd) -> String {
    match b {
        Bdd::FALSE => "f".to_string(),
        Bdd::TRUE => "t".to_string(),
        Bdd(id) => format!("n{id}"),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
