#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! # smc-bdd — ordered binary decision diagrams
//!
//! A from-scratch OBDD package in the style of Brace/Rudell/Bryant,
//! providing the representation layer for the symbolic model checker
//! (Section 2 of Clarke–Grumberg–McMillan–Zhao, DAC 1995).
//!
//! ## Design
//!
//! - A [`BddManager`] owns every node. Nodes are hash-consed through
//!   per-variable unique tables, so structural equality of functions is
//!   pointer (id) equality — the constant-time equivalence check the paper
//!   relies on for fixpoint convergence tests.
//! - A [`Bdd`] is a `Copy` handle (a node id) into one manager. Handles
//!   from different managers must not be mixed; every operation is a method
//!   on the manager.
//! - The symmetric connectives ([`BddManager::and`], [`BddManager::or`],
//!   [`BddManager::xor`]) and negation ([`BddManager::not`]) have
//!   dedicated memoized recursions with commutativity-normalized cache
//!   keys; irregular shapes route through the general memoized
//!   if-then-else ([`BddManager::ite`]). The computed table is a bounded,
//!   lossy, 2-way set-associative cache (see [`BddManagerStats`] for the
//!   per-operation hit/eviction counters).
//! - Quantification ([`BddManager::exists`], [`BddManager::forall`]) and
//!   the fused relational product ([`BddManager::and_exists`]) operate over
//!   *cubes* (conjunctions of variables).
//! - Garbage collection is explicit: protect the roots you need with
//!   [`BddManager::protect`], then call [`BddManager::gc`]. The manager
//!   never collects behind your back.
//! - Dynamic variable reordering by sifting is available through
//!   [`BddManager::sift`]; a target order can be forced with
//!   [`BddManager::reorder`].
//! - Don't-care minimization via the generalized cofactor
//!   ([`BddManager::constrain`]), Graphviz export
//!   ([`BddManager::to_dot`]) and a text save/load format
//!   ([`BddManager::write_bdds`] / [`BddManager::read_bdds`]) round out
//!   the tooling.
//!
//! ## Example
//!
//! ```
//! use smc_bdd::BddManager;
//!
//! # fn main() -> Result<(), smc_bdd::BddError> {
//! let mut m = BddManager::new();
//! let x = m.new_var("x")?;
//! let y = m.new_var("y")?;
//! let fx = m.var(x);
//! let fy = m.var(y);
//! // x XOR y has exactly two satisfying assignments over {x, y}.
//! let f = m.xor(fx, fy);
//! assert_eq!(m.sat_count(f, 2), 2.0);
//! # Ok(())
//! # }
//! ```

mod apply;
mod dot;
mod error;
#[cfg(any(test, feature = "fault-injection"))]
mod faults;
mod gc;
mod governor;
mod heap;
mod io;
mod manager;
mod node;
mod quant;
mod reorder;
mod sat;
mod subst;
mod validate;

pub use error::BddError;
#[cfg(any(test, feature = "fault-injection"))]
pub use faults::FaultPlan;
pub use governor::{Budget, CancelToken, TripReason};
pub use manager::{BddManager, BddManagerStats, OpCounters, CACHE_OP_NAMES, NUM_CACHE_OPS};
pub use node::{Bdd, Var};
pub use sat::{CubeIter, SatAssignment};

#[cfg(test)]
mod tests;

/// Compile-time `Send` assertions: the parallel engine gives every job
/// its own manager on a worker thread, so the manager (and everything a
/// job carries with it) must stay `Send`. A reintroduced `Rc` fails
/// compilation here rather than at a distant spawn site.
#[allow(dead_code)]
mod send_assertions {
    fn assert_send<T: Send>() {}

    fn session_types_are_send() {
        assert_send::<crate::BddManager>();
        assert_send::<crate::Bdd>();
        assert_send::<crate::Budget>();
        assert_send::<crate::TripReason>();
        assert_send::<crate::BddError>();
    }

    fn cancel_tokens_cross_threads() {
        // Cancellation is signalled from outside the worker.
        fn assert_sync<T: Sync>() {}
        assert_send::<crate::CancelToken>();
        assert_sync::<crate::CancelToken>();
    }
}
