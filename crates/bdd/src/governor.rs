//! The resource governor: budgets, deadlines, cooperative cancellation
//! and transactional allocation.
//!
//! A [`Budget`] installed with [`BddManager::set_budget`] bounds a
//! computation four ways — wall-clock deadline, live-node census, total
//! allocation count, and (for the fixpoint layers above) an iteration
//! cap — and carries an optional [`CancelToken`] that other threads can
//! flip. The manager consults the governor on every node allocation and
//! at every memoized-operation entry; the fixpoint and witness layers
//! call [`BddManager::checkpoint`] at their iteration boundaries.
//!
//! Because the `Bdd`-returning operations cannot report errors without
//! poisoning every signature in the stack, enforcement is *cooperative*:
//! when a limit trips, the governor records a [`TripReason`], every
//! subsequent operation entry returns immediately with a dummy handle and
//! allocates nothing, and the next [`BddManager::checkpoint`] /
//! [`BddManager::check_budget`] call surfaces the structured
//! [`BddError::ResourceExhausted`]. At that point the allocation
//! *transaction* — every node created since the last safe point — is
//! rolled back, leaving the unique tables, free list and creation
//! counters exactly as they were, so a retried query replays the same
//! node ids and produces bit-identical results.
//!
//! Under live-node pressure a checkpoint first escalates through the
//! graceful-degradation ladder (garbage collection → sifting reorder →
//! computed-cache shrink) and errors only if the live census still
//! exceeds the budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::BddError;
use crate::manager::BddManager;
use crate::node::{Bdd, Node};

/// Operation entries between deadline/cancellation polls (each poll costs
/// a clock read / atomic load; recursion entries are ~ns).
const TICK_INTERVAL: u32 = 2048;

/// Allocations between hard live-node census checks (the census sums the
/// per-variable unique-table lengths).
const HARD_CHECK_INTERVAL: u32 = 256;

/// A cooperative cancellation flag, checkable from other threads.
///
/// Cloning shares the flag; [`cancel`](Self::cancel) from any clone (or
/// thread) trips every manager whose active [`Budget`] carries it at the
/// next governor poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a governed computation was stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline of the budget passed.
    DeadlineExpired,
    /// The budget's [`CancelToken`] was cancelled (or a spurious
    /// cancellation was injected by the fault harness).
    Cancelled,
    /// The live-node census exceeded the budget even after the
    /// degradation ladder (GC, sifting, cache shrink) ran.
    NodeLimit {
        /// Live nodes at the failing census.
        live: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The total-allocation budget was spent.
    AllocLimit {
        /// Nodes allocated since the budget was installed.
        allocated: u64,
        /// The configured limit.
        limit: u64,
    },
    /// A fixpoint exceeded its iteration cap.
    IterationLimit {
        /// The iteration that overran the cap.
        iterations: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The node table is full (node ids are `u32`), or a table-full fault
    /// was injected.
    TableFull,
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::DeadlineExpired => write!(f, "wall-clock deadline expired"),
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::NodeLimit { live, limit } => {
                write!(f, "{live} live nodes exceed the limit of {limit}")
            }
            TripReason::AllocLimit { allocated, limit } => {
                write!(f, "{allocated} nodes allocated, budget was {limit}")
            }
            TripReason::IterationLimit { iterations, limit } => {
                write!(f, "fixpoint iteration {iterations} exceeds the cap of {limit}")
            }
            TripReason::TableFull => write!(f, "node table is full"),
        }
    }
}

/// Resource bounds for governed computations. All limits are optional;
/// an empty budget never trips but still arms the transactional
/// allocation log (and the fault hooks, if any are injected).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use smc_bdd::{BddManager, Budget};
///
/// let mut m = BddManager::new();
/// m.set_budget(Budget::new().with_timeout(Duration::from_secs(5)).with_node_limit(1 << 20));
/// // ... run governed work, polling m.check_budget() / m.checkpoint(..) ...
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    pub(crate) deadline: Option<Instant>,
    pub(crate) node_limit: Option<usize>,
    pub(crate) alloc_limit: Option<u64>,
    pub(crate) max_iterations: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
}

impl Budget {
    /// An unbounded budget.
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Trip when `timeout` has elapsed from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Trip at an absolute instant.
    pub fn with_deadline(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Soft cap on live nodes. Checkpoints over the cap run the
    /// degradation ladder (GC → sift → cache shrink) and trip only if
    /// the live census still exceeds it; allocations trip outright at
    /// twice the cap (the hard limit).
    pub fn with_node_limit(mut self, nodes: usize) -> Budget {
        self.node_limit = Some(nodes);
        self
    }

    /// Cap on total node allocations while this budget is installed.
    pub fn with_alloc_limit(mut self, allocations: u64) -> Budget {
        self.alloc_limit = Some(allocations);
        self
    }

    /// Cap on fixpoint iterations, enforced by the iteration counts the
    /// fixpoint layers pass to [`BddManager::checkpoint`].
    pub fn with_max_iterations(mut self, iterations: u64) -> Budget {
        self.max_iterations = Some(iterations);
        self
    }

    /// Attach a cancellation token (shared with the caller / other
    /// threads).
    pub fn with_cancel_token(mut self, token: &CancelToken) -> Budget {
        self.cancel = Some(token.clone());
        self
    }

    /// The configured iteration cap, if any.
    pub fn max_iterations(&self) -> Option<u64> {
        self.max_iterations
    }

    /// The configured live-node cap, if any.
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// Does this budget bound anything at all?
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.node_limit.is_none()
            && self.alloc_limit.is_none()
            && self.max_iterations.is_none()
            && self.cancel.is_none()
    }
}

/// Internal governor state carried by the manager.
#[derive(Debug, Default)]
pub(crate) struct Governor {
    /// Fast gate for the hot paths: true iff a budget is installed, a
    /// fault plan is armed, or a trip is pending delivery.
    pub(crate) active: bool,
    /// While true (adjacent-level swaps rewiring nodes in place), the
    /// governor neither bails out of `mk` nor logs allocations — a
    /// half-applied swap would corrupt the manager.
    pub(crate) suspended: bool,
    pub(crate) budget: Option<Budget>,
    pub(crate) tripped: Option<TripReason>,
    /// Node ids allocated since the last safe point, in allocation order.
    pub(crate) txn_log: Vec<u32>,
    /// Total allocations observed while the governor was active (never
    /// reset; trigger points are stored as absolute counts against it).
    pub(crate) allocs: u64,
    /// `allocs` value when the current budget was installed.
    pub(crate) alloc_base: u64,
    /// Absolute `allocs` count at which the allocation budget trips.
    pub(crate) alloc_ceiling: Option<u64>,
    /// Countdown to the next deadline/cancellation poll.
    pub(crate) tick: u32,
    /// Countdown to the next hard live-node census.
    pub(crate) hard_tick: u32,
    /// Degradation-ladder escalation: 0 = GC only, 1 = sifted, 2 = cache
    /// shrunk. Sticky until a new budget is installed.
    pub(crate) ladder_stage: u8,
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) faults: Option<crate::faults::FaultState>,
}

impl Governor {
    fn recompute_active(&mut self) {
        self.active = self.budget.is_some() || self.tripped.is_some() || self.faults_armed();
    }

    #[cfg(any(test, feature = "fault-injection"))]
    fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    #[cfg(not(any(test, feature = "fault-injection")))]
    fn faults_armed(&self) -> bool {
        false
    }
}

impl BddManager {
    /// Installs a resource budget. Replaces any previous budget, clears a
    /// pending trip and resets the degradation ladder; allocations made
    /// so far are committed (they will not be rolled back by a later
    /// failure).
    pub fn set_budget(&mut self, budget: Budget) {
        let g = &mut self.governor;
        g.txn_log.clear();
        g.tripped = None;
        g.ladder_stage = 0;
        g.tick = 0;
        g.hard_tick = 0;
        g.alloc_base = g.allocs;
        g.alloc_ceiling = budget.alloc_limit.map(|l| g.allocs.saturating_add(l));
        g.budget = Some(budget);
        g.recompute_active();
    }

    /// Removes the budget (and any pending trip); allocations made so far
    /// are committed.
    pub fn clear_budget(&mut self) {
        let g = &mut self.governor;
        g.txn_log.clear();
        g.tripped = None;
        g.budget = None;
        g.alloc_ceiling = None;
        g.recompute_active();
    }

    /// The currently installed budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.governor.budget.as_ref()
    }

    /// The pending trip reason, if a limit has tripped and the error has
    /// not yet been delivered by [`check_budget`](Self::check_budget) /
    /// [`checkpoint`](Self::checkpoint).
    pub fn trip_reason(&self) -> Option<&TripReason> {
        self.governor.tripped.as_ref()
    }

    /// Fast per-recursion-entry gate used by the memoized operations.
    /// Returns `true` when the computation has tripped and the operation
    /// should unwind immediately with a dummy handle.
    #[inline]
    pub(crate) fn op_entry(&mut self) -> bool {
        if !self.governor.active {
            return false;
        }
        self.op_entry_governed()
    }

    fn op_entry_governed(&mut self) -> bool {
        if self.governor.suspended {
            return false;
        }
        if self.governor.tripped.is_some() {
            return true;
        }
        self.governor.tick += 1;
        if self.governor.tick >= TICK_INTERVAL {
            self.governor.tick = 0;
            self.poll_signals();
        }
        self.governor.tripped.is_some()
    }

    /// Polls deadline and cancellation (unconditionally, not tick-gated).
    fn poll_signals(&mut self) {
        if self.governor.tripped.is_some() {
            return;
        }
        let Some(budget) = &self.governor.budget else { return };
        if let Some(deadline) = budget.deadline {
            if Instant::now() >= deadline {
                self.governor.tripped = Some(TripReason::DeadlineExpired);
                return;
            }
        }
        if let Some(token) = &budget.cancel {
            if token.is_cancelled() {
                self.governor.tripped = Some(TripReason::Cancelled);
            }
        }
    }

    /// Bookkeeping for one fresh node allocation: transaction logging,
    /// fault hooks, allocation budget and the hard live-node limit.
    pub(crate) fn note_alloc(&mut self, id: u32) {
        self.governor.txn_log.push(id);
        self.governor.allocs += 1;
        #[cfg(any(test, feature = "fault-injection"))]
        self.fault_hooks_on_alloc();
        if self.governor.tripped.is_some() {
            return;
        }
        if let Some(ceiling) = self.governor.alloc_ceiling {
            if self.governor.allocs > ceiling {
                self.governor.tripped = Some(TripReason::AllocLimit {
                    allocated: self.governor.allocs - self.governor.alloc_base,
                    limit: ceiling - self.governor.alloc_base,
                });
                return;
            }
        }
        let Some(soft) = self.governor.budget.as_ref().and_then(|b| b.node_limit) else {
            return;
        };
        self.governor.hard_tick += 1;
        if self.governor.hard_tick >= HARD_CHECK_INTERVAL {
            self.governor.hard_tick = 0;
            // Hard limit: twice the soft cap (the ladder runs at safe
            // points; this stops a single runaway operation in between).
            let hard = soft.saturating_mul(2).max(soft.saturating_add(4096));
            let live = self.num_nodes();
            if live > hard {
                self.governor.tripped = Some(TripReason::NodeLimit { live, limit: soft });
            }
        }
    }

    /// Commits the allocation transaction: nodes created so far survive a
    /// later rollback.
    pub(crate) fn txn_commit(&mut self) {
        self.governor.txn_log.clear();
    }

    /// Rolls back every allocation since the last safe point: the nodes
    /// leave their unique tables, their slots return to the free list in
    /// replay order (a retry pops the same ids in the same order), the
    /// creation counter rewinds, and the computed table is invalidated so
    /// no memoized result can reference a reclaimed slot.
    fn txn_rollback(&mut self) {
        if self.governor.txn_log.is_empty() {
            return;
        }
        while let Some(id) = self.governor.txn_log.pop() {
            let n = self.nodes[id as usize];
            let removed = self.tables[n.var as usize].remove(n.lo, n.hi);
            debug_assert_eq!(removed, Some(id), "rollback of an un-interned node");
            self.nodes[id as usize] = Node::terminal();
            self.free.push(id);
            self.stats.created_nodes -= 1;
        }
        self.cache.invalidate_all();
    }

    /// Polls the budget (deadline, cancellation, pending trips) without
    /// running the degradation ladder. Call this at safe points where
    /// every needed handle is reachable from your own bindings; no
    /// garbage collection happens here.
    ///
    /// On `Ok` the allocation transaction is committed. On `Err` it is
    /// rolled back (see [`checkpoint`](Self::checkpoint)) and the trip is
    /// cleared so the manager is immediately reusable.
    ///
    /// # Errors
    ///
    /// [`BddError::ResourceExhausted`] with the [`TripReason`].
    pub fn check_budget(&mut self) -> Result<(), BddError> {
        if !self.governor.active {
            return Ok(());
        }
        self.poll_signals();
        if let Some(reason) = self.governor.tripped.take() {
            self.txn_rollback();
            self.governor.recompute_active();
            self.emit_trip(&reason);
            return Err(BddError::ResourceExhausted(reason));
        }
        self.txn_commit();
        Ok(())
    }

    fn emit_trip(&self, reason: &TripReason) {
        if self.tele.enabled() {
            self.tele.emit(smc_obs::Event::Trip { reason: reason.to_string() });
            // The heap at trip time is the black box's best structural
            // signal, and a trip can precede the first cadence-gated
            // fixpoint sample — emit a brief so every exhausted job's
            // dump header carries one.
            self.tele.emit(self.heap_sample());
        }
    }

    /// Full safe-point check for iterative algorithms: polls the budget,
    /// enforces the iteration cap against `iterations`, and under
    /// live-node pressure escalates the degradation ladder — collect
    /// garbage (keeping `roots` and the protected set), then once per
    /// budget sift the variable order, then shrink the computed cache —
    /// before giving up.
    ///
    /// `roots` must cover every live intermediate the caller still needs;
    /// handles not reachable from `roots` or the protected set may be
    /// reclaimed.
    ///
    /// On `Ok` the allocation transaction is committed; on a trip it is
    /// rolled back first (iteration-cap and ladder failures commit — the
    /// completed iterations are consistent).
    ///
    /// # Errors
    ///
    /// [`BddError::ResourceExhausted`] with the [`TripReason`].
    pub fn checkpoint(&mut self, iterations: u64, roots: &[Bdd]) -> Result<(), BddError> {
        if !self.governor.active {
            return Ok(());
        }
        self.poll_signals();
        if let Some(reason) = self.governor.tripped.take() {
            self.txn_rollback();
            self.governor.recompute_active();
            self.emit_trip(&reason);
            return Err(BddError::ResourceExhausted(reason));
        }
        self.txn_commit();
        let Some(budget) = &self.governor.budget else {
            return Ok(());
        };
        if let Some(limit) = budget.max_iterations {
            if iterations > limit {
                let reason = TripReason::IterationLimit { iterations, limit };
                self.emit_trip(&reason);
                return Err(BddError::ResourceExhausted(reason));
            }
        }
        if let Some(limit) = budget.node_limit {
            if self.num_nodes() > limit {
                self.relieve_pressure(limit, roots)?;
            }
        }
        Ok(())
    }

    /// The degradation ladder, run at a checkpoint whose live census
    /// exceeds the soft node limit.
    fn relieve_pressure(&mut self, limit: usize, roots: &[Bdd]) -> Result<(), BddError> {
        if self.tele.enabled() {
            self.tele.emit(smc_obs::Event::Ladder { stage: "gc" });
        }
        self.gc(roots);
        if self.num_nodes() > limit && self.governor.ladder_stage < 1 {
            self.governor.ladder_stage = 1;
            if self.tele.enabled() {
                self.tele.emit(smc_obs::Event::Ladder { stage: "sift" });
            }
            self.sift(roots);
        }
        if self.num_nodes() > limit && self.governor.ladder_stage < 2 {
            self.governor.ladder_stage = 2;
            if self.tele.enabled() {
                self.tele.emit(smc_obs::Event::Ladder { stage: "cache_shrink" });
            }
            let cap = self.cache_capacity();
            self.set_cache_capacity((cap / 4).max(1));
        }
        let live = self.num_nodes();
        if live > limit {
            let reason = TripReason::NodeLimit { live, limit };
            self.emit_trip(&reason);
            return Err(BddError::ResourceExhausted(reason));
        }
        Ok(())
    }

    /// Degradation-ladder escalation stage of the current budget:
    /// 0 = GC only so far, 1 = sifting ran, 2 = the computed cache was
    /// shrunk. Diagnostic; resets when a budget is installed.
    pub fn ladder_stage(&self) -> u8 {
        self.governor.ladder_stage
    }
}
