//! Memoized boolean operations: specialized and/or/xor/not recursions
//! plus the general if-then-else.
//!
//! The binary connectives on the model-checking hot path (conjunction,
//! disjunction, difference) get dedicated two-operand recursions with
//! commutativity-normalized cache keys, so `a ∧ b` and `b ∧ a` share one
//! computed-table entry and the key is two ids instead of three. `ite`
//! remains the general case for everything irregular.

use crate::manager::{BddManager, CacheOp};
use crate::node::Bdd;

impl BddManager {
    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// The general recursive workhorse; the symmetric connectives use the
    /// specialized recursions below, everything else is a special case of
    /// this. Memoized through the computed table, so repeated subproblems
    /// cost one hash lookup — this is what makes the fixpoint iterations
    /// of symbolic model checking tractable.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if self.op_entry() {
            return Bdd::FALSE;
        }
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        // Route the symmetric shapes to the specialized recursions so the
        // two entry points share one memo line.
        if h.is_false() {
            return self.and(f, g);
        }
        if g.is_true() {
            return self.or(f, h);
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        let key = (CacheOp::Ite, f.0, g.0, h.0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        // Split on the topmost variable of the three operands.
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let top = lf.min(lg).min(lh);
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let result = self.mk(var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Both cofactors of `b` with respect to the variable at `level`
    /// (identity if `b`'s root is below that level).
    #[inline]
    pub(crate) fn cofactors_at(&self, b: Bdd, level: u32) -> (Bdd, Bdd) {
        if self.level(b) == level {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        }
    }

    /// Logical negation `¬f`. Dedicated memoized recursion.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if self.op_entry() {
            return Bdd::FALSE;
        }
        if f.is_false() {
            return Bdd::TRUE;
        }
        if f.is_true() {
            return Bdd::FALSE;
        }
        let key = (CacheOp::Not, f.0, 0, 0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let result = self.mk(n.var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Conjunction `f ∧ g`. Dedicated memoized recursion; the cache key is
    /// normalized by operand id so both argument orders share one entry.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if self.op_entry() {
            return Bdd::FALSE;
        }
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (CacheOp::And, a.0, b.0, 0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        let la = self.level(a);
        let lb = self.level(b);
        let top = la.min(lb);
        let var = self.level2var[top as usize];
        let (a0, a1) = self.cofactors_at(a, top);
        let (b0, b1) = self.cofactors_at(b, top);
        let lo = self.and(a0, b0);
        let hi = self.and(a1, b1);
        let result = self.mk(var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Disjunction `f ∨ g`. Dedicated memoized recursion with a
    /// commutativity-normalized cache key.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if self.op_entry() {
            return Bdd::FALSE;
        }
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return Bdd::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (CacheOp::Or, a.0, b.0, 0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        let la = self.level(a);
        let lb = self.level(b);
        let top = la.min(lb);
        let var = self.level2var[top as usize];
        let (a0, a1) = self.cofactors_at(a, top);
        let (b0, b1) = self.cofactors_at(b, top);
        let lo = self.or(a0, b0);
        let hi = self.or(a1, b1);
        let result = self.mk(var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Exclusive or `f ⊕ g`. Dedicated memoized recursion with a
    /// commutativity-normalized cache key.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if self.op_entry() {
            return Bdd::FALSE;
        }
        if f == g {
            return Bdd::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (CacheOp::Xor, a.0, b.0, 0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        let la = self.level(a);
        let lb = self.level(b);
        let top = la.min(lb);
        let var = self.level2var[top as usize];
        let (a0, a1) = self.cofactors_at(a, top);
        let (b0, b1) = self.cofactors_at(b, top);
        let lo = self.xor(a0, b0);
        let hi = self.xor(a1, b1);
        let result = self.mk(var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Equivalence `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Difference `f ∧ ¬g` (set subtraction when BDDs denote state sets).
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Joint denial `¬(f ∨ g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let o = self.or(f, g);
        self.not(o)
    }

    /// Alternative denial `¬(f ∧ g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let a = self.and(f, g);
        self.not(a)
    }

    /// N-ary conjunction. Returns `true` for an empty iterator.
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, operands: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for b in operands {
            acc = self.and(acc, b);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// N-ary disjunction. Returns `false` for an empty iterator.
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, operands: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for b in operands {
            acc = self.or(acc, b);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Is `f ⊆ g` when both are viewed as sets of assignments
    /// (i.e. does `f → g` hold universally)?
    pub fn is_subset(&mut self, f: Bdd, g: Bdd) -> bool {
        self.diff(f, g).is_false()
    }

    /// Do `f` and `g` share at least one satisfying assignment?
    pub fn intersects(&mut self, f: Bdd, g: Bdd) -> bool {
        !self.and(f, g).is_false()
    }
}
