//! Memoized if-then-else and the boolean connectives derived from it.

use crate::manager::{BddManager, CacheOp};
use crate::node::Bdd;

impl BddManager {
    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// The single recursive workhorse; every binary connective is a
    /// special case. Memoized through the computed table, so repeated
    /// subproblems cost one hash lookup — this is what makes the fixpoint
    /// iterations of symbolic model checking tractable.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        let key = (CacheOp::Ite, f.0, g.0, h.0);
        if let Some(hit) = self.cache_get(key) {
            return hit;
        }
        // Split on the topmost variable of the three operands.
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let top = lf.min(lg).min(lh);
        let var = self.level2var[top as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let result = self.mk(var, lo, hi);
        self.cache_put(key, result);
        result
    }

    /// Both cofactors of `b` with respect to the variable at `level`
    /// (identity if `b`'s root is below that level).
    #[inline]
    pub(crate) fn cofactors_at(&self, b: Bdd, level: u32) -> (Bdd, Bdd) {
        if self.level(b) == level {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        }
    }

    /// Logical negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Difference `f ∧ ¬g` (set subtraction when BDDs denote state sets).
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Joint denial `¬(f ∨ g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let o = self.or(f, g);
        self.not(o)
    }

    /// Alternative denial `¬(f ∧ g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let a = self.and(f, g);
        self.not(a)
    }

    /// N-ary conjunction. Returns `true` for an empty iterator.
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, operands: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for b in operands {
            acc = self.and(acc, b);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// N-ary disjunction. Returns `false` for an empty iterator.
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, operands: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for b in operands {
            acc = self.or(acc, b);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Is `f ⊆ g` when both are viewed as sets of assignments
    /// (i.e. does `f → g` hold universally)?
    pub fn is_subset(&mut self, f: Bdd, g: Bdd) -> bool {
        self.diff(f, g).is_false()
    }

    /// Do `f` and `g` share at least one satisfying assignment?
    pub fn intersects(&mut self, f: Bdd, g: Bdd) -> bool {
        !self.and(f, g).is_false()
    }
}
