//! Gate netlists and their speed-independent symbolic semantics.

use std::error::Error;
use std::fmt;

use smc_bdd::{Bdd, BddManager, Var};
use smc_kripke::{KripkeError, SymbolicModel};

/// A node (gate output, environment input) in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Position of the node in declaration order (= its state bit).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A combinational expression over node values — gate target functions
/// and input protocol guards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Comb {
    /// Constant.
    Const(bool),
    /// The current value of a node.
    Node(NodeId),
    /// Negation.
    Not(Box<Comb>),
    /// N-ary conjunction.
    And(Vec<Comb>),
    /// N-ary disjunction.
    Or(Vec<Comb>),
    /// Exclusive or.
    Xor(Box<Comb>, Box<Comb>),
}

impl Comb {
    /// A node reference.
    pub fn node(id: NodeId) -> Comb {
        Comb::Node(id)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // associated constructor, not a `!` operator on self
    pub fn not(c: Comb) -> Comb {
        Comb::Not(Box::new(c))
    }

    /// Conjunction of operands.
    pub fn and<I: IntoIterator<Item = Comb>>(operands: I) -> Comb {
        Comb::And(operands.into_iter().collect())
    }

    /// Disjunction of operands.
    pub fn or<I: IntoIterator<Item = Comb>>(operands: I) -> Comb {
        Comb::Or(operands.into_iter().collect())
    }

    /// Exclusive or.
    pub fn xor(a: Comb, b: Comb) -> Comb {
        Comb::Xor(Box::new(a), Box::new(b))
    }

    /// The Muller C-element target: output rises when both inputs are
    /// high, falls when both are low, otherwise holds:
    /// `(a ∧ b) ∨ (out ∧ (a ∨ b))`.
    pub fn c_element(a: NodeId, b: NodeId, out: NodeId) -> Comb {
        Comb::or([
            Comb::and([Comb::node(a), Comb::node(b)]),
            Comb::and([Comb::node(out), Comb::or([Comb::node(a), Comb::node(b)])]),
        ])
    }
}

/// How fairness constraints are attached by [`Netlist::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessMode {
    /// One constraint per gate: "the gate is stable infinitely often" —
    /// the paper's "every gate eventually responds".
    #[default]
    PerGate,
    /// No fairness constraints (gates may lag forever).
    None,
}

/// Errors reported while assembling a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node with this name already exists.
    DuplicateName(String),
    /// The node already has a definition.
    AlreadyDefined(String),
    /// Some declared node was never defined as a gate or input.
    Undefined(String),
    /// Error from the model layer.
    Kripke(KripkeError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "node {n:?} declared twice"),
            NetlistError::AlreadyDefined(n) => write!(f, "node {n:?} defined twice"),
            NetlistError::Undefined(n) => write!(f, "node {n:?} has no definition"),
            NetlistError::Kripke(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Kripke(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KripkeError> for NetlistError {
    fn from(e: KripkeError) -> NetlistError {
        NetlistError::Kripke(e)
    }
}

#[derive(Debug, Clone)]
enum NodeDef {
    /// Declared but not yet defined.
    Pending,
    /// A gate with a target function.
    Gate(Comb),
    /// An environment input that may toggle whenever the guard holds.
    Input(Comb),
}

#[derive(Debug, Clone)]
struct NetNode {
    name: String,
    init: bool,
    def: NodeDef,
}

/// A gate-level netlist under construction.
///
/// Declare every node first (so feedback loops can reference forward
/// nodes), then define each as a gate ([`make_gate`](Self::make_gate))
/// or an environment input ([`make_input`](Self::make_input)), and
/// finally [`build`](Self::build) the symbolic model.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nodes: Vec<NetNode>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    /// Declares a node with an initial value.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] if the name is taken.
    pub fn declare(&mut self, name: &str, init: bool) -> Result<NodeId, NetlistError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        self.nodes.push(NetNode { name: name.to_string(), init, def: NodeDef::Pending });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Defines a node as a gate computing `target`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::AlreadyDefined`] on double definition.
    pub fn make_gate(&mut self, id: NodeId, target: Comb) -> Result<(), NetlistError> {
        let node = &mut self.nodes[id.0];
        if !matches!(node.def, NodeDef::Pending) {
            return Err(NetlistError::AlreadyDefined(node.name.clone()));
        }
        node.def = NodeDef::Gate(target);
        Ok(())
    }

    /// Defines a node as an environment input free to toggle whenever
    /// `guard` holds (pass `Comb::Const(true)` for a fully free input).
    /// Inputs carry no fairness obligation: the environment may stall.
    ///
    /// # Errors
    ///
    /// [`NetlistError::AlreadyDefined`] on double definition.
    pub fn make_input(&mut self, id: NodeId, guard: Comb) -> Result<(), NetlistError> {
        let node = &mut self.nodes[id.0];
        if !matches!(node.def, NodeDef::Pending) {
            return Err(NetlistError::AlreadyDefined(node.name.clone()));
        }
        node.def = NodeDef::Input(guard);
        Ok(())
    }

    /// Number of declared nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been declared.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Renders the netlist as an SMV program with the same
    /// speed-independent semantics, checkable with the `smc` CLI.
    ///
    /// The interleaving is encoded with a free scheduler variable
    /// `sel : 0..n`: a step fires the gate `sel` points at when it is
    /// excited (or, for inputs, when its protocol guard holds) and
    /// stutters otherwise (including the spare value `sel = n`).
    /// Per-gate fairness becomes `FAIRNESS <gate> <-> <target>` (the
    /// stability predicate). Node names must be valid SMV identifiers.
    ///
    /// # Panics
    ///
    /// Panics if some node has no definition (call after fully defining
    /// the netlist).
    pub fn to_smv(&self) -> String {
        use std::fmt::Write as _;
        let n = self.nodes.len();
        assert!(
            self.nodes.iter().all(|nd| !matches!(nd.def, NodeDef::Pending)),
            "netlist has undefined nodes"
        );
        let mut out = String::from("MODULE main\nVAR\n");
        let _ = writeln!(out, "  sel : 0..{n};");
        for node in &self.nodes {
            let _ = writeln!(out, "  {} : boolean;", node.name);
        }
        out.push_str("ASSIGN\n");
        for node in &self.nodes {
            let _ = writeln!(
                out,
                "  init({}) := {};",
                node.name,
                if node.init { "TRUE" } else { "FALSE" }
            );
        }
        out.push_str("TRANS\n");
        let mut clauses: Vec<String> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let name = &node.name;
            let fire_condition = match &node.def {
                NodeDef::Pending => unreachable!("checked above"),
                // An excited gate toggles toward its target.
                NodeDef::Gate(target) => {
                    format!("({} <-> !({}))", name, self.comb_to_smv(target))
                }
                // An input toggles while its protocol guard holds.
                NodeDef::Input(guard) => self.comb_to_smv(guard),
            };
            // Gate i toggles exactly when selected *and* fireable; in
            // every other case it holds (so a sel pointing at a stable
            // gate is a global stutter, keeping the relation total).
            clauses
                .push(format!("  ((sel = {i} & {fire_condition}) -> (next({name}) <-> !{name}))"));
            clauses
                .push(format!("  (!(sel = {i} & {fire_condition}) -> (next({name}) <-> {name}))"));
        }
        out.push_str(&clauses.join(" &\n"));
        out.push('\n');
        for node in &self.nodes {
            if let NodeDef::Gate(target) = &node.def {
                let _ = writeln!(out, "FAIRNESS {} <-> ({})", node.name, self.comb_to_smv(target));
            }
        }
        out
    }

    fn comb_to_smv(&self, comb: &Comb) -> String {
        match comb {
            Comb::Const(true) => "TRUE".to_string(),
            Comb::Const(false) => "FALSE".to_string(),
            Comb::Node(id) => self.nodes[id.0].name.clone(),
            Comb::Not(c) => format!("!({})", self.comb_to_smv(c)),
            Comb::And(cs) => {
                if cs.is_empty() {
                    "TRUE".to_string()
                } else {
                    let parts: Vec<String> =
                        cs.iter().map(|c| format!("({})", self.comb_to_smv(c))).collect();
                    parts.join(" & ")
                }
            }
            Comb::Or(cs) => {
                if cs.is_empty() {
                    "FALSE".to_string()
                } else {
                    let parts: Vec<String> =
                        cs.iter().map(|c| format!("({})", self.comb_to_smv(c))).collect();
                    parts.join(" | ")
                }
            }
            Comb::Xor(a, b) => {
                format!("!(({}) <-> ({}))", self.comb_to_smv(a), self.comb_to_smv(b))
            }
        }
    }

    /// Compiles the netlist to a symbolic Kripke structure with
    /// speed-independent interleaving semantics.
    ///
    /// The transition relation is: fire exactly one excited gate, or
    /// toggle one input whose guard holds, or stutter. Atomic
    /// propositions: every node name (its current value), plus
    /// `<name>.stable` for each gate.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Undefined`] if a declared node lacks a
    /// definition; [`NetlistError::Kripke`] for degenerate models.
    pub fn build(&self, fairness_mode: FairnessMode) -> Result<SymbolicModel, NetlistError> {
        for node in &self.nodes {
            if matches!(node.def, NodeDef::Pending) {
                return Err(NetlistError::Undefined(node.name.clone()));
            }
        }
        let mut manager = BddManager::new();
        let mut names = Vec::with_capacity(self.nodes.len());
        let mut cur: Vec<Var> = Vec::with_capacity(self.nodes.len());
        let mut nxt: Vec<Var> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            cur.push(
                manager
                    .new_var(&node.name)
                    .map_err(|e| NetlistError::Kripke(KripkeError::Bdd(e)))?,
            );
            nxt.push(
                manager
                    .new_var(&format!("{}'", node.name))
                    .map_err(|e| NetlistError::Kripke(KripkeError::Bdd(e)))?,
            );
            names.push(node.name.clone());
        }
        let cur_lits: Vec<Bdd> = cur.iter().map(|&v| manager.var(v)).collect();
        let nxt_lits: Vec<Bdd> = nxt.iter().map(|&v| manager.var(v)).collect();

        // Per-node "everything else holds" frames, built once.
        let hold: Vec<Bdd> =
            (0..self.nodes.len()).map(|i| manager.iff(cur_lits[i], nxt_lits[i])).collect();
        let mut hold_all = Bdd::TRUE;
        for &h in &hold {
            hold_all = manager.and(hold_all, h);
        }
        // frame_except[i] = ∧_{j≠i} hold[j] — via prefix/suffix products.
        let n = self.nodes.len();
        let mut prefix = vec![Bdd::TRUE; n + 1];
        for i in 0..n {
            prefix[i + 1] = manager.and(prefix[i], hold[i]);
        }
        let mut suffix = vec![Bdd::TRUE; n + 1];
        for i in (0..n).rev() {
            suffix[i] = manager.and(suffix[i + 1], hold[i]);
        }

        let mut trans = hold_all; // stuttering step
        let mut fairness = Vec::new();
        let mut labels: Vec<(String, Bdd)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let frame = manager.and(prefix[i], suffix[i + 1]);
            let toggles = manager.xor(cur_lits[i], nxt_lits[i]);
            match &node.def {
                NodeDef::Pending => unreachable!("checked before compilation"),
                NodeDef::Gate(target) => {
                    let target_bdd = eval_comb(&mut manager, target, &cur_lits);
                    let excited = manager.xor(cur_lits[i], target_bdd);
                    let fire = manager.and_all([excited, toggles, frame]);
                    trans = manager.or(trans, fire);
                    let stable = manager.not(excited);
                    labels.push((format!("{}.stable", node.name), stable));
                    if fairness_mode == FairnessMode::PerGate {
                        fairness.push(stable);
                    }
                }
                NodeDef::Input(guard) => {
                    let guard_bdd = eval_comb(&mut manager, guard, &cur_lits);
                    let toggle = manager.and_all([guard_bdd, toggles, frame]);
                    trans = manager.or(trans, toggle);
                }
            }
        }

        let mut init = Bdd::TRUE;
        for (i, node) in self.nodes.iter().enumerate() {
            let lit = manager.literal(cur[i], node.init);
            init = manager.and(init, lit);
        }

        let model =
            SymbolicModel::assemble(manager, names, cur, nxt, init, trans, fairness, labels)?;
        Ok(model)
    }
}

/// Evaluates a combinational expression over current-state literals.
fn eval_comb(manager: &mut BddManager, comb: &Comb, cur: &[Bdd]) -> Bdd {
    match comb {
        Comb::Const(b) => manager.constant(*b),
        Comb::Node(id) => cur[id.0],
        Comb::Not(c) => {
            let x = eval_comb(manager, c, cur);
            manager.not(x)
        }
        Comb::And(cs) => {
            let operands: Vec<Bdd> = cs.iter().map(|c| eval_comb(manager, c, cur)).collect();
            manager.and_all(operands)
        }
        Comb::Or(cs) => {
            let operands: Vec<Bdd> = cs.iter().map(|c| eval_comb(manager, c, cur)).collect();
            manager.or_all(operands)
        }
        Comb::Xor(a, b) => {
            let x = eval_comb(manager, a, cur);
            let y = eval_comb(manager, b, cur);
            manager.xor(x, y)
        }
    }
}
