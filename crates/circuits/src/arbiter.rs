//! A reconstruction of the Seitz asynchronous arbiter of the paper's
//! Figure 3.
//!
//! The paper's schematic names the signals `ur`, `tr`, `ta`, `sr`, `sa`,
//! `ua` per user, the mutual-exclusion (ME) element with inputs
//! `mei1/mei2` and outputs `meo1/meo2`, and OR/AND gates on the request
//! paths; the precise 1994 netlist is not recoverable from the text, so
//! this module rebuilds the topology the counterexample narrative
//! implies (see DESIGN.md, "Substitutions"):
//!
//! - `mei_i = OR(ur_i, ta_i)` — the delayed OR gate of the trace,
//! - `meo_1 = mei_1 ∧ ¬meo_2`, `meo_2 = mei_2 ∧ ¬meo_1` — the
//!   cross-coupled ME element,
//! - `tr_i = AND(ur_i, meo_i)` — the AND gate re-raising the trial
//!   request,
//! - `ta_i` follows `tr_i` (trial acknowledge),
//! - `sr = OR(ta_1, ta_2)`, `sa` follows `sr` (service handshake),
//! - `ua_i = AND(ta_i, sa)` — the user acknowledge,
//! - users `ur_i` are environment inputs obeying the 4-phase handshake
//!   (`ur` may change only when `ur = ua`), with **no** obligation to
//!   request or release.
//!
//! Under per-gate fairness the circuit satisfies the safety spec
//! (mutual exclusion of the grants) but fails liveness
//! `AG (ur2 → AF ua2)`: user 1 may hold the ME element forever. The
//! checker's counterexample exhibits the starvation lasso, reproducing
//! the qualitative shape of the paper's case study.

use smc_kripke::SymbolicModel;

use crate::netlist::{Comb, FairnessMode, Netlist, NetlistError, NodeId};

/// The signal handles of one user port.
#[derive(Debug, Clone, Copy)]
pub struct UserPort {
    /// User request (environment input).
    pub ur: NodeId,
    /// Trial request into the service stage.
    pub tr: NodeId,
    /// Trial acknowledge.
    pub ta: NodeId,
    /// User acknowledge.
    pub ua: NodeId,
    /// ME element input for this user.
    pub mei: NodeId,
    /// ME element output (grant) for this user.
    pub meo: NodeId,
}

/// The assembled arbiter: the netlist plus the named ports.
#[derive(Debug, Clone)]
pub struct Arbiter {
    /// The underlying netlist.
    pub netlist: Netlist,
    /// Per-user signal handles.
    pub users: Vec<UserPort>,
    /// Service request (OR of the trial acknowledges).
    pub sr: NodeId,
    /// Service acknowledge.
    pub sa: NodeId,
}

impl Arbiter {
    /// Builds the symbolic model with per-gate fairness (the paper's
    /// setting).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from the netlist compilation.
    pub fn build(&self) -> Result<SymbolicModel, NetlistError> {
        self.netlist.build(FairnessMode::PerGate)
    }

    /// Builds without fairness constraints (for ablations).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from the netlist compilation.
    pub fn build_unfair(&self) -> Result<SymbolicModel, NetlistError> {
        self.netlist.build(FairnessMode::None)
    }
}

/// Constructs the two-user Seitz-style arbiter.
pub fn seitz_arbiter() -> Arbiter {
    arbiter(2)
}

/// Constructs an `n`-user generalisation: the ME element becomes a
/// one-hot arbiter (`meo_i = mei_i ∧ ¬⋁_{j≠i} meo_j`); everything else
/// is replicated per user. `n = 2` is the paper's circuit.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn arbiter(n: usize) -> Arbiter {
    assert!(n >= 2, "an arbiter needs at least two users");
    let mut net = Netlist::new();
    // Declare everything first (the circuit is full of feedback).
    let expect = "fresh names by construction";
    let mut users = Vec::with_capacity(n);
    for i in 1..=n {
        let ur = net.declare(&format!("ur{i}"), false).expect(expect);
        let tr = net.declare(&format!("tr{i}"), false).expect(expect);
        let ta = net.declare(&format!("ta{i}"), false).expect(expect);
        let ua = net.declare(&format!("ua{i}"), false).expect(expect);
        let mei = net.declare(&format!("mei{i}"), false).expect(expect);
        let meo = net.declare(&format!("meo{i}"), false).expect(expect);
        users.push(UserPort { ur, tr, ta, ua, mei, meo });
    }
    let sr = net.declare("sr", false).expect(expect);
    let sa = net.declare("sa", false).expect(expect);

    for (i, u) in users.iter().enumerate() {
        // 4-phase user: may toggle the request exactly when ur = ua.
        let guard = Comb::not(Comb::xor(Comb::node(u.ur), Comb::node(u.ua)));
        net.make_input(u.ur, guard).expect("declared above");
        // OR gate on the ME input path (the "slow OR1" of the trace).
        net.make_gate(u.mei, Comb::or([Comb::node(u.ur), Comb::node(u.ta)]))
            .expect("declared above");
        // ME element: grant i iff requested and no other grant is up.
        let others = Comb::or(
            users.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, o)| Comb::node(o.meo)),
        );
        net.make_gate(u.meo, Comb::and([Comb::node(u.mei), Comb::not(others)]))
            .expect("declared above");
        // Trial request and acknowledge.
        net.make_gate(u.tr, Comb::and([Comb::node(u.ur), Comb::node(u.meo)]))
            .expect("declared above");
        net.make_gate(u.ta, Comb::node(u.tr)).expect("declared above");
        // User acknowledge.
        net.make_gate(u.ua, Comb::and([Comb::node(u.ta), Comb::node(sa)])).expect("declared above");
    }
    // Service handshake.
    net.make_gate(sr, Comb::or(users.iter().map(|u| Comb::node(u.ta)))).expect("declared above");
    net.make_gate(sa, Comb::node(sr)).expect("declared above");

    Arbiter { netlist: net, users, sr, sa }
}
