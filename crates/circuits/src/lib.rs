#![warn(missing_docs)]

//! # smc-circuits — speed-independent gate-level circuits
//!
//! The modeling substrate for the paper's case study (Section 6): gate
//! netlists under **speed-independent** semantics. Every gate may take
//! arbitrarily long to respond to its inputs:
//!
//! - each node holds its current boolean value;
//! - a gate is *excited* when its output differs from its target
//!   function of the current node values;
//! - a step fires **one** excited gate (or lets an environment input
//!   toggle when its protocol guard allows, or stutters);
//! - one fairness constraint per gate — *"the gate is stable
//!   (unexcited) infinitely often"* — encodes the paper's "every gate
//!   eventually responds": a gate left excited forever violates it.
//!
//! [`arbiter`] reconstructs the Seitz asynchronous arbiter of Figure 3
//! (the exact 1994 netlist is not recoverable from the paper; see
//! DESIGN.md for the substitution argument), and [`families`] provides
//! scalable circuits for the benchmark sweeps.
//!
//! ## Example
//!
//! ```
//! use smc_circuits::{Comb, FairnessMode, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A ring of three inverters (a speed-independent oscillator).
//! let mut n = Netlist::new();
//! let a = n.declare("a", false)?;
//! let b = n.declare("b", false)?;
//! let c = n.declare("c", true)?;
//! n.make_gate(a, Comb::not(Comb::node(c)))?;
//! n.make_gate(b, Comb::not(Comb::node(a)))?;
//! n.make_gate(c, Comb::not(Comb::node(b)))?;
//! let mut model = n.build(FairnessMode::PerGate)?;
//! assert!(model.reachable_count()? > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod families;
mod netlist;

pub use netlist::{Comb, FairnessMode, Netlist, NetlistError, NodeId};

#[cfg(test)]
mod tests;
