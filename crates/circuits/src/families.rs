//! Scalable speed-independent circuit families for benchmarks.

use smc_kripke::SymbolicModel;

use crate::netlist::{Comb, FairnessMode, Netlist, NetlistError};

/// A ring of `n` inverters (`n` odd gives a free-running oscillator).
/// Node `i` inverts node `(i + n - 1) mod n`; the all-zero initial state
/// leaves at least one gate excited for odd `n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn inverter_ring(n: usize) -> Netlist {
    assert!(n >= 2, "a ring needs at least two inverters");
    let mut net = Netlist::new();
    let nodes: Vec<_> =
        (0..n).map(|i| net.declare(&format!("inv{i}"), false).expect("fresh names")).collect();
    for i in 0..n {
        let prev = nodes[(i + n - 1) % n];
        net.make_gate(nodes[i], Comb::not(Comb::node(prev))).expect("declared above");
    }
    net
}

/// A Muller C-element pipeline of depth `n` (a classic asynchronous
/// FIFO control): stage `i` is a C-element of the previous stage and
/// the inverted next stage; the head is fed by a free environment
/// input.
///
/// # Panics
///
/// Panics if `n < 1`.
pub fn muller_pipeline(n: usize) -> Netlist {
    assert!(n >= 1, "a pipeline needs at least one stage");
    let mut net = Netlist::new();
    let input = net.declare("in", false).expect("fresh names");
    let stages: Vec<_> =
        (0..n).map(|i| net.declare(&format!("c{i}"), false).expect("fresh names")).collect();
    net.make_input(input, Comb::Const(true)).expect("declared above");
    for i in 0..n {
        let left = if i == 0 { input } else { stages[i - 1] };
        // C(left, ¬right); the last stage sees constant-high "space".
        let right =
            if i + 1 < n { Comb::not(Comb::node(stages[i + 1])) } else { Comb::Const(true) };
        let c = Comb::or([
            Comb::and([Comb::node(left), right.clone()]),
            Comb::and([Comb::node(stages[i]), Comb::or([Comb::node(left), right])]),
        ]);
        net.make_gate(stages[i], c).expect("declared above");
    }
    net
}

/// A self-timed ring of `n` Muller C-elements (a closed micropipeline):
/// stage `i` is `C(c_{i-1}, ¬c_{i+1})` with indices mod `n` — it copies
/// its predecessor once its successor has consumed the previous value.
/// Stage 0 starts high (one data token in the ring); transitions then
/// circulate forever, making every stage toggle infinitely often under
/// per-gate fairness.
///
/// # Panics
///
/// Panics if `n < 3` (smaller rings have no room for a token to move).
pub fn c_element_ring(n: usize) -> Netlist {
    assert!(n >= 3, "a C-element ring needs at least three stages");
    let mut net = Netlist::new();
    let expect = "fresh names by construction";
    let stages: Vec<_> =
        (0..n).map(|i| net.declare(&format!("c{i}"), i == 0).expect(expect)).collect();
    for i in 0..n {
        let prev = stages[(i + n - 1) % n];
        let next = stages[(i + 1) % n];
        // C(prev, ¬next) with output hold:
        //   (prev ∧ ¬next) ∨ (c_i ∧ (prev ∨ ¬next))
        let a = Comb::node(prev);
        let b = Comb::not(Comb::node(next));
        let target = Comb::or([
            Comb::and([a.clone(), b.clone()]),
            Comb::and([Comb::node(stages[i]), Comb::or([a, b])]),
        ]);
        net.make_gate(stages[i], target).expect(expect);
    }
    net
}

/// Builds the family member and its symbolic model with per-gate
/// fairness — convenience for benches.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the compilation.
pub fn build_fair(net: &Netlist) -> Result<SymbolicModel, NetlistError> {
    net.build(FairnessMode::PerGate)
}
