//! Tests for the netlist semantics and the arbiter case study (EXP-1).

use smc_checker::Checker;
use smc_logic::ctl;

use crate::arbiter::{arbiter, seitz_arbiter};
use crate::families::{c_element_ring, inverter_ring, muller_pipeline};
use crate::netlist::{Comb, FairnessMode, Netlist, NetlistError};

// ---------------------------------------------------------------------
// Netlist construction
// ---------------------------------------------------------------------

#[test]
fn netlist_validation() {
    let mut n = Netlist::new();
    let a = n.declare("a", false).unwrap();
    assert!(matches!(n.declare("a", true), Err(NetlistError::DuplicateName(_))));
    // Undefined node fails at build.
    assert!(matches!(n.build(FairnessMode::PerGate), Err(NetlistError::Undefined(_))));
    n.make_gate(a, Comb::Const(false)).unwrap();
    assert!(matches!(n.make_gate(a, Comb::Const(true)), Err(NetlistError::AlreadyDefined(_))));
    assert_eq!(n.len(), 1);
    assert_eq!(n.name(a), "a");
    let mut model = n.build(FairnessMode::PerGate).expect("builds");
    assert_eq!(model.reachable_count().unwrap(), 1.0);
}

#[test]
fn single_gate_settles() {
    // A buffer of a constant-high: from init low it must fire once.
    let mut n = Netlist::new();
    let a = n.declare("a", false).unwrap();
    n.make_gate(a, Comb::Const(true)).unwrap();
    let mut model = n.build(FairnessMode::PerGate).expect("builds");
    assert_eq!(model.reachable_count().unwrap(), 2.0);
    let mut c = Checker::new(&mut model);
    // Fairness forces the gate to respond: AF a.
    assert!(c.check(&ctl::parse("AF a").unwrap()).unwrap().holds());
    // Without fairness the gate may lag forever.
    let mut unfair = n.build(FairnessMode::None).expect("builds");
    let mut c = Checker::new(&mut unfair);
    assert!(!c.check(&ctl::parse("AF a").unwrap()).unwrap().holds());
    // The `.stable` label is registered.
    assert!(c.check(&ctl::parse("EF a.stable").unwrap()).unwrap().holds());
}

#[test]
fn inverter_ring_oscillates_under_fairness() {
    let net = inverter_ring(3);
    let mut model = net.build(FairnessMode::PerGate).expect("builds");
    // One-gate-at-a-time interleaving reaches 7 of the 8 states from
    // 000 (the complement pattern stays out of reach).
    assert_eq!(model.reachable_count().unwrap(), 7.0);
    let mut c = Checker::new(&mut model);
    // The oscillator never settles: every fair path toggles inv0 forever.
    assert!(c.check(&ctl::parse("AG (AF inv0 & AF !inv0)").unwrap()).unwrap().holds());
    // The witness for EG true is a fair lasso visiting stability of each
    // gate infinitely often.
    let w = c.witness(&ctl::parse("EG true").unwrap()).unwrap();
    assert!(w.is_lasso());
    assert!(w.is_path_of(&mut model));
    for g in 0..3 {
        let stable = model.ap(&format!("inv{g}.stable")).unwrap();
        assert!(w.cycle_visits(&model, stable), "gate {g} must stabilize i.o.");
    }
}

#[test]
fn even_ring_can_settle() {
    // A 2-ring (a latch) has stable states; fair paths may park there.
    let net = inverter_ring(2);
    let mut model = net.build(FairnessMode::PerGate).expect("builds");
    let mut c = Checker::new(&mut model);
    // From the unstable 00 start the latch resolves to 01 or 10 and can
    // stay: EF EG (inv0 <-> !inv1).
    assert!(c.check(&ctl::parse("EF (EG (inv0 <-> !inv1))").unwrap()).unwrap().holds());
}

#[test]
fn c_element_ring_circulates_forever() {
    for n in [3usize, 4, 6] {
        let net = c_element_ring(n);
        let mut model = net.build(FairnessMode::PerGate).expect("builds");
        // The ring has n(n-1) reachable states (rise/fall wavefront
        // positions around the ring).
        assert_eq!(model.reachable_count().unwrap(), (n * (n - 1)) as f64, "n={n}");
        let mut c = Checker::new(&mut model);
        // Under fairness every stage toggles infinitely often...
        assert!(c.check(&ctl::parse("AG (AF c0 & AF !c0)").unwrap()).unwrap().holds());
        // ...so no stage can freeze.
        assert!(!c.check(&ctl::parse("EG c0").unwrap()).unwrap().holds());
        // The oscillation witness is a fair lasso on which c0 both rises
        // and falls.
        let w = c.witness(&ctl::parse("EG true").unwrap()).unwrap();
        assert!(w.is_lasso());
        assert!(w.is_path_of(c.model()));
        let c0 = c.model().ap("c0").unwrap();
        assert!(w.cycle().iter().any(|s| c.model().eval_state(c0, s)));
        assert!(w.cycle().iter().any(|s| !c.model().eval_state(c0, s)));
    }
}

#[test]
fn muller_pipeline_propagates_tokens() {
    let net = muller_pipeline(3);
    let mut model = net.build(FairnessMode::PerGate).expect("builds");
    let mut c = Checker::new(&mut model);
    // The environment can push a token through to the last stage.
    assert!(c.check(&ctl::parse("EF c2").unwrap()).unwrap().holds());
    // But the environment is lazy: nothing forces the token in.
    assert!(!c.check(&ctl::parse("AF c0").unwrap()).unwrap().holds());
}

// ---------------------------------------------------------------------
// SMV export
// ---------------------------------------------------------------------

#[test]
fn smv_export_matches_native_semantics() {
    // Export a small circuit to SMV, compile with the SMV frontend, and
    // compare verdicts with the native netlist build.
    let net = inverter_ring(3);
    let mut native = net.build(FairnessMode::PerGate).expect("builds");
    let source = net.to_smv();
    let mut exported = smc_smv::compile(&source).expect("exported SMV compiles");
    // The exported model carries the scheduler variable, so raw state
    // counts differ; projected properties must agree.
    for spec in ["AG (AF inv0 & AF !inv0)", "EF (inv0 & inv1)", "EG inv0", "AG (EF !inv2)"] {
        let f = ctl::parse(spec).unwrap();
        let native_holds = Checker::new(&mut native).check(&f).unwrap().holds();
        let exported_holds = Checker::new(&mut exported.model).check(&f).unwrap().holds();
        assert_eq!(native_holds, exported_holds, "{spec}");
    }
}

#[test]
fn smv_export_mentions_every_node_and_fairness() {
    let arb = seitz_arbiter();
    let source = arb.netlist.to_smv();
    assert!(source.contains("MODULE main"));
    assert!(source.contains("sel : 0..14;"));
    for name in ["ur1", "tr1", "ta1", "meo1", "mei2", "sa"] {
        assert!(source.contains(&format!("{name} : boolean;")), "{name}");
    }
    // 12 gates (6 per user) + sr + sa = 14 nodes, 2 inputs -> 12 FAIRNESS.
    assert_eq!(source.matches("FAIRNESS").count(), 12);
}

// ---------------------------------------------------------------------
// EXP-1: the arbiter case study
// ---------------------------------------------------------------------

#[test]
fn arbiter_reachable_state_space() {
    let arb = seitz_arbiter();
    let mut model = arb.build().expect("builds");
    // 14 nodes; the protocol cuts the 16384-state cube to 12288
    // reachable states (the paper's original netlist had 33,633 — same
    // order of magnitude, different exact netlist; see DESIGN.md).
    assert_eq!(model.num_state_vars(), 14);
    assert_eq!(model.reachable_count().unwrap(), 12288.0);
}

#[test]
fn arbiter_safety_holds() {
    let arb = seitz_arbiter();
    let mut model = arb.build().expect("builds");
    let mut c = Checker::new(&mut model);
    // Mutual exclusion of the grants.
    assert!(c.check(&ctl::parse("AG !(meo1 & meo2)").unwrap()).unwrap().holds());
    // The service stage is always re-reachable.
    assert!(c.check(&ctl::parse("AG (EF sr)").unwrap()).unwrap().holds());
    // Requests are actually serviceable.
    assert!(c.check(&ctl::parse("EF ua1").unwrap()).unwrap().holds());
    assert!(c.check(&ctl::parse("EF ua2").unwrap()).unwrap().holds());
}

#[test]
fn arbiter_liveness_fails_with_lasso_counterexample() {
    // The paper's headline: a liveness spec AG (r -> AF a) fails and the
    // checker produces a prefix+cycle counterexample.
    let arb = seitz_arbiter();
    let mut model = arb.build().expect("builds");
    let ua2 = model.ap("ua2").unwrap();
    let mut c = Checker::new(&mut model);
    let spec = ctl::parse("AG (ur2 -> AF ua2)").unwrap();
    assert!(!c.check(&spec).unwrap().holds(), "user 2 can starve");
    let cx = c.counterexample(&spec).unwrap();
    assert!(cx.is_lasso(), "liveness counterexamples are lassos");
    assert!(cx.is_path_of(&mut model), "the trace must replay");
    // The cycle keeps ua2 low forever...
    for s in cx.cycle() {
        assert!(!model.eval_state(ua2, s), "cycle must starve user 2");
    }
    // ...while honouring every gate's fairness constraint.
    for k in 0..model.fairness().len() {
        let constraint = model.fairness()[k];
        assert!(cx.cycle_visits(&model, constraint), "cycle must visit fairness constraint {k}");
    }
}

#[test]
fn arbiter_trial_liveness_fails_like_the_paper() {
    // The exact spec of the paper's case study: AG (tr1 -> AF ta1).
    let arb = seitz_arbiter();
    let mut model = arb.build().expect("builds");
    let mut c = Checker::new(&mut model);
    let spec = ctl::parse("AG (tr1 -> AF ta1)").unwrap();
    assert!(!c.check(&spec).unwrap().holds());
    let cx = c.counterexample(&spec).unwrap();
    assert!(cx.is_lasso());
    assert!(cx.is_path_of(&mut model));
    let ta1 = model.ap("ta1").unwrap();
    for s in cx.cycle() {
        assert!(!model.eval_state(ta1, s));
    }
}

#[test]
fn arbiter_without_fairness_fails_trivially() {
    // A pending unacknowledged request must make progress (the OR gate
    // fires or the acknowledge completes) — but only under fairness;
    // without it every gate may lag forever (Section 5).
    let spec = ctl::parse("AG ((ur1 & !ua1) -> AF (mei1 | ua1))").unwrap();
    let arb = seitz_arbiter();
    let mut model = arb.build_unfair().expect("builds");
    let mut c = Checker::new(&mut model);
    assert!(!c.check(&spec).unwrap().holds(), "unfair gates may stall");
    let mut fair_model = arb.build().expect("builds");
    let mut c = Checker::new(&mut fair_model);
    assert!(c.check(&spec).unwrap().holds(), "fairness forces progress");
}

#[test]
fn n_user_arbiter_scales() {
    let arb = arbiter(3);
    let mut model = arb.build().expect("builds");
    assert_eq!(model.num_state_vars(), 20);
    let mut c = Checker::new(&mut model);
    // Pairwise grant exclusion.
    assert!(c
        .check(&ctl::parse("AG (!(meo1 & meo2) & !(meo1 & meo3) & !(meo2 & meo3))").unwrap())
        .unwrap()
        .holds());
    // Starvation persists with more users.
    assert!(!c.check(&ctl::parse("AG (ur3 -> AF ua3)").unwrap()).unwrap().holds());
}

#[test]
#[should_panic(expected = "at least two users")]
fn arbiter_requires_two_users() {
    let _ = arbiter(1);
}
