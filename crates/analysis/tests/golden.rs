//! Golden diagnostic tests: every lint code fires exactly where it
//! should, with a stable code and an exact source span, and the healthy
//! models stay clean.
//!
//! `models/lint_demo.smv` seeds one trigger per warning the analyzer
//! can reach on a compilable model (W001, W002, W003, W005, W010, W011,
//! W020). The error codes and the warnings that would poison the demo
//! model (W004's cycle cannot compile; W012 would empty the fair set
//! and starve W020's witness) are pinned on inline sources instead.

use smc_analysis::{analyze, AnalysisOptions, Diagnostic, Report, Severity};
use smc_smv::Span;

fn demo_path(name: &str) -> String {
    format!("{}/../../models/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn analyze_file(name: &str) -> (String, Report) {
    let source = std::fs::read_to_string(demo_path(name)).expect("model file");
    let report = analyze(&source, &AnalysisOptions::full());
    (source, report)
}

/// The byte span of the first occurrence of `needle` in `source`.
fn span_of(source: &str, needle: &str) -> Span {
    let start = source.find(needle).unwrap_or_else(|| panic!("{needle:?} not in source"));
    Span::new(start, start + needle.len())
}

fn find<'r>(report: &'r Report, code: &str) -> &'r Diagnostic {
    report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in {report:#?}"))
}

#[test]
fn lint_demo_reports_every_seeded_diagnostic() {
    let (source, report) = analyze_file("lint_demo.smv");

    let mut codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    assert_eq!(
        codes,
        vec![
            "W001", "W002", "W003", "W005", "W010", "W011", "W020", "W020", "W021", "W021", "W021",
            "W022"
        ],
        "exactly the seeded warnings, nothing else: {report:#?}"
    );
    assert!(report.exhausted.is_none());
    assert_eq!(report.exit_code(), 1, "warnings only");

    // W001: `z` declared but never used — span of the declaration.
    let w001 = find(&report, "W001");
    assert!(w001.message.contains("`z`"), "{w001:?}");
    assert_eq!(w001.span, Some(span_of(&source, "z    : boolean;")));

    // W002: `wo` assigned but never read — span of the declaration.
    let w002 = find(&report, "W002");
    assert!(w002.message.contains("`wo`"), "{w002:?}");
    assert_eq!(w002.span, Some(span_of(&source, "wo   : boolean;")));

    // W003: the branch after the literal TRUE guard — span of the
    // shadowed branch.
    let w003 = find(&report, "W003");
    assert_eq!(w003.span, Some(span_of(&source, "c = 1 : 2;")));

    // W005: `c = 5` can never hold for c : 0..2 — span of the SPEC
    // statement the comparison sits in.
    let w005 = find(&report, "W005");
    assert!(w005.message.contains("always FALSE"), "{w005:?}");
    assert_eq!(w005.span, Some(span_of(&source, "SPEC AG (c = 5 -> AF c = 0)")));

    // W010: the stop=TRUE states deadlock; concrete evidence attached.
    let w010 = find(&report, "W010");
    assert_eq!(w010.span, None, "deadlock is a whole-model finding");
    assert!(
        w010.notes.iter().any(|n| n.contains("stuck state") && n.contains("stop=TRUE")),
        "W010 must show a concrete stuck state: {w010:?}"
    );

    // W011: the req-guarded branch of next(gate) is never taken — span
    // of that branch.
    let w011 = find(&report, "W011");
    assert_eq!(w011.span, Some(span_of(&source, "req  : TRUE;")));

    // W020 (first spec): AG (req -> AF ack) is vacuous in `ack`; the
    // strengthened formula and an interesting witness ride along.
    let w020 = find(&report, "W020");
    assert_eq!(w020.span, Some(span_of(&source, "SPEC AG (req -> AF ack)")));
    assert!(w020.message.contains("`ack`"), "{w020:?}");
    assert!(
        w020.notes.iter().any(|n| n.contains("AG (req -> AF false)")),
        "strengthened formula rendered with source leaf names: {w020:?}"
    );
    assert!(
        w020.notes.iter().any(|n| n.contains("state 0:")),
        "interesting witness generated: {w020:?}"
    );

    // Both W020s are warnings with spans inside their SPEC statements.
    for d in report.diagnostics.iter().filter(|d| d.code == "W020") {
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.span.is_some());
    }

    // W021: req, c and gate are provably frozen — `req` and `c` stand
    // still directly, `gate` only through the fixpoint over `req`. Each
    // finding sits on its declaration and names the frozen value.
    let w021s: Vec<&Diagnostic> = report.diagnostics.iter().filter(|d| d.code == "W021").collect();
    let expect = [
        ("req", "FALSE", "req  : boolean;"),
        ("c", "0", "c    : 0..2;"),
        ("gate", "FALSE", "gate : boolean;"),
    ];
    for (var, value, needle) in expect {
        let d = w021s
            .iter()
            .find(|d| d.message.contains(&format!("`{var}`")))
            .unwrap_or_else(|| panic!("no W021 for {var}: {report:#?}"));
        assert!(d.message.contains(&format!("`{value}`")), "{d:?}");
        assert_eq!(d.span, Some(span_of(&source, needle)), "{var}");
    }

    // W022: `stop` is read (by the TRANS constraint) but lies in no
    // spec's cone; `z`/`wo` stay W001/W002, `gate` stays W021.
    let w022 = find(&report, "W022");
    assert!(w022.message.contains("`stop`"), "{w022:?}");
    assert_eq!(w022.span, Some(span_of(&source, "stop : boolean;")));
}

#[test]
fn pipeline_reports_exactly_the_heartbeat_w022() {
    // models/pipeline.smv: producer/consumer plus an unrelated blinker;
    // every variable serves some spec except the self-referential
    // heartbeat `beat`.
    let (source, report) = analyze_file("pipeline.smv");
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["W022"], "only the seeded irrelevant variable: {report:#?}");
    let w022 = find(&report, "W022");
    assert!(w022.message.contains("`beat`"), "{w022:?}");
    assert_eq!(w022.span, Some(span_of(&source, "beat     : boolean;")));
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn healthy_models_have_no_false_positives() {
    let (_, mutex) = analyze_file("mutex.smv");
    assert_eq!(mutex.diagnostics, vec![], "mutex.smv must lint clean");
    assert_eq!(mutex.exit_code(), 0);

    // arbiter2.smv carries one *true* positive: FAIRNESS forces
    // `c1.state = granted` infinitely often on every fair path, so
    // `AG (waiting -> AF granted)` holds no matter what the antecedent
    // does — the classic fairness-subsumes-liveness vacuity.
    let (_, arbiter) = analyze_file("arbiter2.smv");
    let codes: Vec<&str> = arbiter.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(
        codes,
        vec!["W020"],
        "arbiter2.smv: only the genuine fairness-vacuity finding: {arbiter:#?}"
    );
    let (_, counter) = analyze_file("counter8.smv");
    assert!(!counter.has_errors(), "counter8.smv must compile: {counter:#?}");
}

fn analyze_src(source: &str) -> Report {
    analyze(source, &AnalysisOptions::full())
}

#[test]
fn e001_syntax_error_with_point_span() {
    let source = "MODULE main\nVAR x boolean;\n";
    let report = analyze_src(source);
    let e = find(&report, "E001");
    assert_eq!(e.severity, Severity::Error);
    let span = e.span.expect("parse errors carry their offending byte");
    assert_eq!(span.start, source.find("boolean").expect("present"));
    assert_eq!(report.exit_code(), 2);
}

#[test]
fn e002_misplaced_next_in_init() {
    let source = "MODULE main\nVAR x : boolean;\nINIT next(x)\nASSIGN next(x) := !x;\n";
    let report = analyze_src(source);
    let e = find(&report, "E002");
    assert_eq!(e.span, Some(span_of(source, "INIT next(x)")));
}

#[test]
fn e010_undeclared_identifier_span_is_the_statement() {
    let source = "MODULE main\nVAR x : boolean;\nASSIGN next(x) := ghost;\nSPEC EF x\n";
    let report = analyze_src(source);
    let e = find(&report, "E010");
    assert!(e.message.contains("`ghost`"), "{e:?}");
    assert_eq!(e.span, Some(span_of(source, "next(x) := ghost;")));
}

#[test]
fn e011_duplicate_assign_span_is_the_second_assign() {
    let source =
        "MODULE main\nVAR x : boolean;\nASSIGN next(x) := TRUE; next(x) := FALSE;\nSPEC EF x\n";
    let report = analyze_src(source);
    let e = find(&report, "E011");
    assert_eq!(e.span, Some(span_of(source, "next(x) := FALSE;")));
}

#[test]
fn e012_out_of_domain_constant() {
    let source = "MODULE main\nVAR c : 0..2;\nASSIGN init(c) := 0; next(c) := 7;\nSPEC EF c = 1\n";
    let report = analyze_src(source);
    let e = find(&report, "E012");
    assert!(e.message.contains('7'), "{e:?}");
    assert_eq!(e.span, Some(span_of(source, "next(c) := 7;")));
}

#[test]
fn w004_circular_next_dependency() {
    // next() inside an ASSIGN right-hand side cannot compile, so the
    // cycle is pinned here rather than in lint_demo.smv; the placement
    // errors (E002) ride along.
    let source = "MODULE main\nVAR x : boolean;\nVAR y : boolean;\n\
                  ASSIGN next(x) := next(y); next(y) := next(x);\n";
    let report = analyze_src(source);
    let w = find(&report, "W004");
    assert!(w.message.contains("next(x)") && w.message.contains("next(y)"), "{w:?}");
    assert!(report.diagnostics.iter().any(|d| d.code == "E002"), "{report:#?}");
}

#[test]
fn w012_unsatisfiable_and_unreachable_fairness() {
    // A FAIRNESS no reachable state satisfies would empty the fair set
    // and break vacuity witnesses, so it lives on an inline model.
    let source = "MODULE main\nVAR x : boolean;\n\
                  ASSIGN init(x) := FALSE; next(x) := FALSE;\n\
                  FAIRNESS x\nSPEC EF x\n";
    let report = analyze_src(source);
    let w = find(&report, "W012");
    assert_eq!(w.span, Some(span_of(source, "FAIRNESS x")));
}

#[test]
fn json_rendering_round_trips_through_the_obs_parser() {
    let (source, report) = analyze_file("lint_demo.smv");
    let json = report.render_json("lint_demo.smv", &source);
    let v = smc_obs::Json::parse(&json).expect("valid JSON");
    let diags = match v.get("diagnostics") {
        Some(smc_obs::Json::Arr(items)) => items,
        other => panic!("diagnostics array missing: {other:?}"),
    };
    assert_eq!(diags.len(), report.diagnostics.len());
    for (d, rendered) in report.diagnostics.iter().zip(diags) {
        assert_eq!(rendered.get("code").and_then(|c| c.as_str()), Some(d.code), "codes in order");
    }
}
