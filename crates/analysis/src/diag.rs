//! The diagnostics engine: stable codes, severities, source spans and
//! the two renderers (human-readable with source snippets, and JSON
//! lines for tooling).
//!
//! # Code registry
//!
//! Codes are stable across releases; tools may match on them.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | E001 | error    | syntax error |
//! | E002 | error    | semantic error (unknown construct, type mismatch) |
//! | E003 | error    | model-layer error (empty initial set, ...) |
//! | E010 | error    | undeclared identifier |
//! | E011 | error    | duplicate `ASSIGN` to the same variable |
//! | E012 | error    | constant outside the assigned variable's domain |
//! | W001 | warning  | variable declared but never used |
//! | W002 | warning  | variable assigned but never read |
//! | W003 | warning  | `case` branch shadowed by an earlier `TRUE` guard |
//! | W004 | warning  | circular `next()` dependency between assignments |
//! | W005 | warning  | comparison with a constant outside the domain |
//! | W010 | warning  | transition relation not total (reachable deadlock) |
//! | W011 | warning  | `case` branch never taken on any relevant state |
//! | W012 | warning  | fairness constraint unsatisfiable or unreachable |
//! | W020 | warning  | specification passes vacuously |
//! | W021 | warning  | variable provably frozen at one value |
//! | W022 | warning  | variable influences no specification (outside every cone) |

use smc_smv::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The model is suspicious but loadable.
    Warning,
    /// The model cannot be compiled (or is certainly wrong).
    Error,
}

impl Severity {
    /// The lowercase wire name (`"warning"` / `"error"`), matching the
    /// vocabulary of [`smc_obs::Event::Diagnostic`].
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a stable code, a severity, a message, an optional
/// source span and free-form notes (evidence, witnesses, hints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E0xx` / `W0xx`; see the module table).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// One-line human description.
    pub message: String,
    /// Byte span in the source, when the finding has one.
    pub span: Option<Span>,
    /// Extra lines: evidence states, witness traces, hints.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(
        code: &'static str,
        message: impl Into<String>,
        span: Option<Span>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Builder-style: appends a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

/// The result of one analysis run: every finding, plus whether the run
/// was cut short by the resource governor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, sorted by source position then code.
    pub diagnostics: Vec<Diagnostic>,
    /// `Some(reason)` when the governor stopped the run before every
    /// pass finished; the diagnostics gathered so far are still valid.
    pub exhausted: Option<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// True when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Sorts findings by source position (span-less findings last), then
    /// by code, then by message, giving a deterministic presentation.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let ka = a.span.map_or(usize::MAX, |s| s.start);
            let kb = b.span.map_or(usize::MAX, |s| s.start);
            ka.cmp(&kb).then_with(|| a.code.cmp(b.code)).then_with(|| a.message.cmp(&b.message))
        });
    }

    /// The process exit code mandated for this report: 3 when the
    /// governor tripped, 2 on errors, 1 on warnings only, 0 when clean.
    pub fn exit_code(&self) -> i32 {
        if self.exhausted.is_some() {
            3
        } else if self.has_errors() {
            2
        } else if !self.diagnostics.is_empty() {
            1
        } else {
            0
        }
    }

    /// Renders the report for humans: one block per finding with a
    /// `file:line:col` locus, the offending source line with a caret
    /// underline, and `= note:` lines, followed by a summary line.
    pub fn render_human(&self, file: &str, source: &str) -> String {
        let lines = LineIndex::new(source);
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity.as_str(), d.code, d.message));
            if let Some(span) = d.span {
                let (line, col) = lines.locate(span.start);
                out.push_str(&format!("  --> {file}:{line}:{col}\n"));
                if let Some(text) = lines.line_text(source, line) {
                    let gutter = format!("{line}");
                    let pad = " ".repeat(gutter.len());
                    out.push_str(&format!("{pad} |\n"));
                    out.push_str(&format!("{gutter} | {text}\n"));
                    let width = caret_width(span, text, col);
                    out.push_str(&format!(
                        "{pad} | {}{}\n",
                        " ".repeat(col - 1),
                        "^".repeat(width)
                    ));
                }
            }
            for note in &d.notes {
                out.push_str(&format!("  = note: {note}\n"));
            }
            out.push('\n');
        }
        if let Some(reason) = &self.exhausted {
            out.push_str(&format!("analysis stopped early: {reason}\n"));
        }
        let (e, w) = (self.error_count(), self.warning_count());
        out.push_str(&format!("{file}: {e} error{}, {w} warning{}\n", plural(e), plural(w)));
        out
    }

    /// Renders the report as a single JSON object (stable field names;
    /// spans are byte offsets, `line`/`col` are 1-based).
    pub fn render_json(&self, file: &str, source: &str) -> String {
        let lines = LineIndex::new(source);
        let mut out = String::from("{");
        out.push_str(&format!("\"file\":\"{}\",", esc(file)));
        match &self.exhausted {
            Some(r) => out.push_str(&format!("\"exhausted\":\"{}\",", esc(r))),
            None => out.push_str("\"exhausted\":null,"),
        }
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                d.code,
                d.severity.as_str(),
                esc(&d.message)
            ));
            match d.span {
                Some(s) => {
                    let (line, col) = lines.locate(s.start);
                    out.push_str(&format!(
                        ",\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}",
                        s.start, s.end
                    ));
                }
                None => out.push_str(",\"start\":null,\"end\":null,\"line\":null,\"col\":null"),
            }
            out.push_str(",\"notes\":[");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", esc(n)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Width of the caret underline: the span clamped to its first line, at
/// least one column.
fn caret_width(span: Span, line_text: &str, col: usize) -> usize {
    let len = span.end.saturating_sub(span.start).max(1);
    let room = line_text.len().saturating_sub(col - 1).max(1);
    len.min(room)
}

/// Byte-offset → (line, col) mapping. Both are 1-based; columns count
/// bytes (SMV sources are ASCII in practice).
pub(crate) struct LineIndex {
    /// Byte offset at which each line starts.
    starts: Vec<usize>,
}

impl LineIndex {
    pub(crate) fn new(source: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// (line, col), both 1-based, for a byte offset.
    pub(crate) fn locate(&self, offset: usize) -> (usize, usize) {
        let idx = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (idx + 1, offset - self.starts[idx] + 1)
    }

    /// The text of a 1-based line, without its newline.
    pub(crate) fn line_text<'s>(&self, source: &'s str, line: usize) -> Option<&'s str> {
        let start = *self.starts.get(line - 1)?;
        let end = self.starts.get(line).map_or(source.len(), |e| e - 1);
        source.get(start..end)
    }
}

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_contract() {
        let mut r = Report::new();
        assert_eq!(r.exit_code(), 0);
        r.push(Diagnostic::warning("W001", "unused", None));
        assert_eq!(r.exit_code(), 1);
        r.push(Diagnostic::error("E010", "unknown", None));
        assert_eq!(r.exit_code(), 2);
        r.exhausted = Some("deadline".into());
        assert_eq!(r.exit_code(), 3);
    }

    #[test]
    fn line_index_locates_offsets() {
        let src = "ab\ncde\n\nf";
        let ix = LineIndex::new(src);
        assert_eq!(ix.locate(0), (1, 1));
        assert_eq!(ix.locate(1), (1, 2));
        assert_eq!(ix.locate(3), (2, 1));
        assert_eq!(ix.locate(5), (2, 3));
        assert_eq!(ix.locate(7), (3, 1));
        assert_eq!(ix.locate(8), (4, 1));
        assert_eq!(ix.line_text(src, 2), Some("cde"));
        assert_eq!(ix.line_text(src, 3), Some(""));
        assert_eq!(ix.line_text(src, 4), Some("f"));
    }

    #[test]
    fn human_rendering_includes_snippet_and_caret() {
        let src = "MODULE main\nVAR x : boolean;\n";
        let mut r = Report::new();
        r.push(
            Diagnostic::warning("W001", "variable `x` is never used", Some(Span::new(16, 17)))
                .with_note("declare it where it is needed"),
        );
        let text = r.render_human("demo.smv", src);
        assert!(text.contains("warning[W001]: variable `x` is never used"), "{text}");
        assert!(text.contains("--> demo.smv:2:5"), "{text}");
        assert!(text.contains("2 | VAR x : boolean;"), "{text}");
        assert!(text.contains("|     ^"), "{text}");
        assert!(text.contains("= note: declare it"), "{text}");
        assert!(text.contains("demo.smv: 0 errors, 1 warning"), "{text}");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let src = "MODULE main\n";
        let mut r = Report::new();
        r.push(Diagnostic::error("E010", "unknown identifier `y\"`", Some(Span::new(0, 6))));
        r.push(Diagnostic::warning("W010", "deadlock", None).with_note("stuck: x=0"));
        let json = r.render_json("m.smv", src);
        assert!(json.contains("\"code\":\"E010\""), "{json}");
        assert!(json.contains("\\\"`"), "{json}");
        assert!(json.contains("\"line\":1,\"col\":1"), "{json}");
        assert!(json.contains("\"start\":null"), "{json}");
        assert!(json.contains("\"errors\":1,\"warnings\":1"), "{json}");
        assert!(json.contains("\"notes\":[\"stuck: x=0\"]"), "{json}");
    }

    #[test]
    fn sort_orders_by_span_then_code() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("W010", "late", None));
        r.push(Diagnostic::warning("W003", "mid", Some(Span::new(10, 12))));
        r.push(Diagnostic::error("E010", "early", Some(Span::new(2, 4))));
        r.push(Diagnostic::warning("W001", "also mid", Some(Span::new(10, 11))));
        r.sort();
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["E010", "W001", "W003", "W010"]);
    }
}
