#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! # smc-analysis — static and symbolic analysis of SMV models
//!
//! A multi-pass analyzer ("lint") producing structured diagnostics with
//! stable codes, severities and source spans:
//!
//! 1. **Syntactic/semantic** (`syntactic`): walks the flattened AST —
//!    undeclared identifiers, duplicate assignments, out-of-domain
//!    constants, shadowed `case` branches, circular `next()`
//!    dependencies, unused and write-only variables.
//! 2. **Dataflow** (`coi`/`dataflow`): builds the variable
//!    dependency graph, runs the constant-propagation fixpoint, and
//!    reports variables frozen at one value (W021) or outside every
//!    spec's cone of influence (W022). The same machinery plans
//!    cone-of-influence slicing for `--coi` checking ([`plan_coi`]).
//! 3. **Symbolic** (`symbolic`): compiles the model (deadlocks
//!    allowed, branch guards recorded) and checks it with BDDs — a
//!    non-total transition relation with a concrete stuck state,
//!    `case` branches no relevant state ever takes, fairness
//!    constraints no reachable state satisfies.
//! 4. **Vacuity** (`vacuity`): for every passing `SPEC`, strengthens
//!    each atom occurrence by polarity (Beer–Ben-David–Eisner–Rodeh)
//!    and rechecks; a spec that still passes is reported vacuous,
//!    with an *interesting witness* for the strengthened formula.
//!
//! All symbolic work runs under the resource governor: a tripped budget
//! stops the analysis cleanly ([`Report::exhausted`], exit code 3) and
//! keeps the diagnostics gathered so far. Findings are emitted as
//! [`smc_obs::Event::Diagnostic`] telemetry inside a `lint` span.
//!
//! ## Example
//!
//! ```
//! use smc_analysis::{analyze, AnalysisOptions};
//!
//! let report = analyze(
//!     "MODULE main\nVAR x : boolean;\nVAR y : boolean;\nASSIGN next(x) := !x;",
//!     &AnalysisOptions::default(),
//! );
//! assert!(report.diagnostics.iter().any(|d| d.code == "W001")); // y unused
//! ```

mod coi;
mod dataflow;
mod diag;
mod symbolic;
mod syntactic;
mod vacuity;

pub use coi::{plan_adhoc_coi, plan_coi, CoiPlan, SpecCoi};
pub use dataflow::{frozen_constants, ConstVal, DepGraph};
pub use diag::{Diagnostic, Report, Severity};

use smc_bdd::{BddError, Budget};
use smc_kripke::KripkeError;
use smc_obs::{Event, SpanKind, StatsSnapshot, Telemetry};
use smc_smv::{CompileOptions, SmvError};

/// Knobs for one [`analyze`] run.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Resource budget installed on the model's manager for the
    /// symbolic and vacuity passes.
    pub budget: Option<Budget>,
    /// Telemetry handle; the run opens a `lint` span and emits one
    /// `diagnostic` event per finding.
    pub telemetry: Telemetry,
    /// Run the symbolic pass (needs a successful compile).
    pub symbolic: bool,
    /// Run the vacuity pass (needs a successful compile).
    pub vacuity: bool,
}

impl AnalysisOptions {
    /// All passes enabled, no budget, telemetry disabled.
    pub fn full() -> AnalysisOptions {
        AnalysisOptions { symbolic: true, vacuity: true, ..AnalysisOptions::default() }
    }
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            budget: None,
            telemetry: Telemetry::disabled(),
            symbolic: true,
            vacuity: true,
        }
    }
}

/// Analyzes one SMV source end to end and returns the sorted report.
///
/// Parse and flatten errors become `E001`/`E002` diagnostics; when the
/// syntactic pass finds errors the symbolic passes are skipped (the
/// compile would fail on the same problems anyway).
pub fn analyze(source: &str, opts: &AnalysisOptions) -> Report {
    let tele = opts.telemetry.clone();
    let span = tele.span_start(SpanKind::Lint, None, StatsSnapshot::default());
    let mut report = analyze_inner(source, opts);
    report.sort();
    if tele.enabled() {
        for d in &report.diagnostics {
            tele.emit(Event::Diagnostic {
                code: d.code.to_string(),
                severity: d.severity.as_str(),
            });
        }
    }
    tele.span_end(span, StatsSnapshot::default());
    report
}

fn analyze_inner(source: &str, opts: &AnalysisOptions) -> Report {
    let mut report = Report::new();
    let program = match smc_smv::parse(source) {
        Ok(p) => p,
        Err(e) => {
            report.push(smv_diag(&e));
            return report;
        }
    };
    let module = match smc_smv::flatten(&program) {
        Ok(m) => m,
        Err(e) => {
            report.push(smv_diag(&e));
            return report;
        }
    };

    syntactic::run(&module, &mut report);

    if report.has_errors() {
        return report;
    }
    // Dataflow warnings (W021/W022) are source-level like pass 1, but
    // only meaningful on a module whose names all resolve.
    coi::run(&module, &mut report);

    if !opts.symbolic && !opts.vacuity {
        return report;
    }

    let compile_opts = CompileOptions { allow_deadlock: true, record_branches: true };
    let mut compiled = match smc_smv::compile_module_with_options(
        &module,
        opts.budget.clone(),
        opts.telemetry.clone(),
        compile_opts,
    ) {
        Ok(c) => c,
        Err(e) => {
            match smv_trip(&e) {
                Some(reason) => report.exhausted = Some(reason),
                None => report.push(smv_diag(&e)),
            }
            return report;
        }
    };

    if opts.symbolic {
        if let Err(symbolic::Exhausted(reason)) = symbolic::run(&mut compiled, &mut report) {
            report.exhausted = Some(reason);
            return report;
        }
    }
    if opts.vacuity {
        if let Err(symbolic::Exhausted(reason)) = vacuity::run(&mut compiled, &mut report) {
            report.exhausted = Some(reason);
        }
    }
    report
}

/// Routes a frontend error into the diagnostics vocabulary: `E001` for
/// parse errors, `E002` for static semantics, `E003` for model-layer
/// failures.
pub fn smv_diag(e: &SmvError) -> Diagnostic {
    let code = match e {
        SmvError::Parse { .. } => "E001",
        SmvError::Semantic { .. } => "E002",
        SmvError::Kripke(_) => "E003",
    };
    Diagnostic::error(code, e.to_string(), e.span())
}

/// `Some(reason)` when the frontend error is really a governor trip.
fn smv_trip(e: &SmvError) -> Option<String> {
    match e {
        SmvError::Kripke(KripkeError::Bdd(BddError::ResourceExhausted(reason))) => {
            Some(reason.to_string())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn analyze_full(src: &str) -> Report {
        analyze(src, &AnalysisOptions::full())
    }

    #[test]
    fn clean_model_reports_nothing() {
        let report = analyze_full(
            "MODULE main\n\
             VAR x : boolean;\n\
             ASSIGN init(x) := FALSE; next(x) := !x;\n\
             SPEC AG (AF x)\n",
        );
        assert_eq!(report.diagnostics, vec![], "clean model must stay clean");
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn parse_error_is_e001_with_span() {
        let report = analyze_full("MODULE main\nVAR x boolean;\n");
        assert_eq!(codes(&report), vec!["E001"]);
        assert!(report.diagnostics[0].span.is_some());
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn undeclared_identifier_is_e010() {
        let report =
            analyze_full("MODULE main\nVAR x : boolean;\nASSIGN next(x) := y;\nSPEC EF x\n");
        assert_eq!(codes(&report), vec!["E010"]);
    }

    #[test]
    fn duplicate_assign_is_e011() {
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\n\
             ASSIGN next(x) := TRUE; next(x) := FALSE;\n\
             SPEC AG x\n",
        );
        assert!(codes(&report).contains(&"E011"), "{report:?}");
    }

    #[test]
    fn out_of_range_assignment_is_e012() {
        let report =
            analyze_full("MODULE main\nVAR c : 0..2;\nASSIGN init(c) := 0; next(c) := 5;\n");
        assert!(codes(&report).contains(&"E012"), "{report:?}");
    }

    #[test]
    fn unused_and_write_only_variables() {
        let report = analyze_full(
            "MODULE main\n\
             VAR x : boolean;\n\
             VAR z : boolean;\n\
             VAR wo : boolean;\n\
             ASSIGN next(x) := !x; next(wo) := x;\n\
             SPEC EF x\n",
        );
        let cs = codes(&report);
        assert!(cs.contains(&"W001"), "z unused: {report:?}");
        assert!(cs.contains(&"W002"), "wo write-only: {report:?}");
    }

    #[test]
    fn read_through_define_keeps_variable_live() {
        let report = analyze_full(
            "MODULE main\n\
             VAR x : boolean;\n\
             DEFINE alias := x;\n\
             ASSIGN next(x) := !x;\n\
             SPEC EF alias\n",
        );
        assert_eq!(codes(&report), Vec::<&str>::new(), "{report:?}");
    }

    #[test]
    fn shadowed_case_branch_is_w003() {
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\n\
             ASSIGN next(x) := case TRUE : !x; x : FALSE; esac;\n\
             SPEC AG (EF x)\n",
        );
        assert!(codes(&report).contains(&"W003"), "{report:?}");
    }

    #[test]
    fn circular_next_dependency_is_w004() {
        // next() in an ASSIGN right-hand side is also a placement error,
        // so the cycle coexists with E002.
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\nVAR y : boolean;\n\
             ASSIGN next(x) := next(y); next(y) := next(x);\n",
        );
        let cs = codes(&report);
        assert!(cs.contains(&"W004"), "{report:?}");
        assert!(cs.contains(&"E002"), "{report:?}");
    }

    #[test]
    fn constant_comparison_is_w005() {
        let report = analyze_full(
            "MODULE main\nVAR c : 0..2;\n\
             ASSIGN next(c) := c;\n\
             SPEC AG (c = 5 -> AF c = 0)\n",
        );
        assert!(codes(&report).contains(&"W005"), "{report:?}");
    }

    #[test]
    fn deadlock_is_w010_with_stuck_state() {
        // From x=1 there is no successor: next(x) must be both x (stay)
        // and !x — contradiction via TRANS.
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\n\
             ASSIGN init(x) := FALSE;\n\
             TRANS (!x -> next(x)) & (x -> next(x)) & (x -> !next(x))\n\
             SPEC EF x\n",
        );
        let w010 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W010")
            .unwrap_or_else(|| panic!("no W010 in {report:?}"));
        assert!(
            w010.notes.iter().any(|n| n.contains("stuck state")),
            "W010 must carry evidence: {w010:?}"
        );
    }

    #[test]
    fn unreachable_case_branch_is_w011() {
        // x stays FALSE forever, so the `x : TRUE` branch never fires.
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\nVAR y : boolean;\n\
             ASSIGN\n\
             init(x) := FALSE; next(x) := FALSE;\n\
             next(y) := case x : TRUE; TRUE : !y; esac;\n\
             SPEC AG (EF y)\n",
        );
        assert!(codes(&report).contains(&"W011"), "{report:?}");
    }

    #[test]
    fn unsatisfiable_fairness_is_w012() {
        let report = analyze_full(
            "MODULE main\nVAR x : boolean;\n\
             ASSIGN init(x) := FALSE; next(x) := FALSE;\n\
             FAIRNESS x\n",
        );
        assert!(codes(&report).contains(&"W012"), "{report:?}");
    }

    #[test]
    fn vacuous_spec_is_w020_with_witness() {
        // req is never TRUE, so AG (req -> AF ack) holds vacuously: the
        // `ack` occurrence can be strengthened to FALSE (giving AG !req)
        // without changing the verdict.
        let report = analyze_full(
            "MODULE main\n\
             VAR req : boolean;\nVAR ack : boolean;\n\
             ASSIGN\n\
             init(req) := FALSE; next(req) := FALSE;\n\
             init(ack) := FALSE; next(ack) := {FALSE, TRUE};\n\
             SPEC AG (req -> AF ack)\n",
        );
        let w020 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W020")
            .unwrap_or_else(|| panic!("no W020 in {report:?}"));
        assert!(w020.message.contains("`ack`"), "names the irrelevant leaf: {w020:?}");
        let strengthened = w020
            .notes
            .iter()
            .find(|n| n.contains("still holds"))
            .unwrap_or_else(|| panic!("carries the strengthened formula: {w020:?}"));
        assert!(
            !strengthened.contains("__spec"),
            "labels are substituted back to source text: {strengthened}"
        );
        assert!(
            w020.notes.iter().any(|n| n.contains("state 0:")),
            "carries a witness trace: {w020:?}"
        );
    }

    #[test]
    fn non_vacuous_spec_is_clean() {
        // req is free and ack follows it one step later: strengthening
        // req (AG AF ack) or ack (AG !req) flips the verdict, so both
        // occurrences matter.
        let report = analyze_full(
            "MODULE main\n\
             VAR req : boolean;\nVAR ack : boolean;\n\
             ASSIGN\n\
             init(req) := FALSE; next(req) := {FALSE, TRUE};\n\
             init(ack) := FALSE; next(ack) := req;\n\
             SPEC AG (req -> AF ack)\n",
        );
        assert!(
            !codes(&report).contains(&"W020"),
            "a spec where every atom matters is not vacuous: {report:?}"
        );
    }

    #[test]
    fn budget_trip_reports_exhausted_and_exit_3() {
        let opts = AnalysisOptions {
            budget: Some(Budget::new().with_alloc_limit(1)),
            ..AnalysisOptions::full()
        };
        let report = analyze(
            "MODULE main\nVAR c : 0..7;\n\
             ASSIGN init(c) := 0; next(c) := (c + 1) mod 8;\n\
             SPEC AG (EF c = 0)\n",
            &opts,
        );
        assert!(report.exhausted.is_some(), "{report:?}");
        assert_eq!(report.exit_code(), 3);
    }

    #[test]
    fn telemetry_gets_a_lint_span_and_diagnostic_events() {
        use smc_obs::{EventCtx, Sink};
        use std::sync::{Arc, Mutex};

        struct Collect(Arc<Mutex<Vec<Event>>>);
        impl Sink for Collect {
            fn record(&mut self, _ctx: &EventCtx, event: &Event) {
                self.0.lock().expect("collect lock").push(event.clone());
            }
        }

        let collected: Arc<Mutex<Vec<Event>>> = Arc::default();
        let tele = Telemetry::new();
        tele.add_sink(Box::new(Collect(Arc::clone(&collected))));
        let opts = AnalysisOptions { telemetry: tele, ..AnalysisOptions::full() };
        let report = analyze("MODULE main\nVAR x : boolean;\nVAR y : boolean;\n", &opts);
        assert!(!report.diagnostics.is_empty());
        let events = collected.lock().expect("collect lock");
        assert!(
            events.iter().any(|e| matches!(e, Event::SpanStart { kind: SpanKind::Lint, .. })),
            "lint span missing"
        );
        let diags = events.iter().filter(|e| matches!(e, Event::Diagnostic { .. })).count();
        assert_eq!(diags, report.diagnostics.len());
    }
}
