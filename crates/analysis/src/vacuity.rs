//! Pass 3 — specification vacuity detection (W020).
//!
//! A specification that *holds* may do so for a trivial reason: `AG
//! (req -> AF ack)` is satisfied by any model where `req` never rises.
//! Following Beer, Ben-David, Eisner and Rodeh, a formula φ is vacuous
//! in an occurrence ψ when φ holds **and** φ[ψ ← ⊥] still holds, where
//! ⊥ is the hardest value for that occurrence's polarity: `FALSE` for
//! positive occurrences, `TRUE` for negative ones (mixed-polarity
//! occurrences under `<->` are skipped). When the strengthened formula
//! still passes, the occurrence never mattered — and its *witness* is an
//! "interesting" execution of the original specification, produced with
//! the same trace machinery as ordinary witnesses.

use smc_checker::{CheckError, Checker, Trace};
use smc_logic::{atom_occurrences, Ctl};
use smc_smv::{CompiledModel, Expr, Span};

use crate::diag::{Diagnostic, Report};
use crate::symbolic::Exhausted;

/// One vacuous specification, recorded while the checker still borrows
/// the model; traces are rendered afterwards, when `render_state` is
/// available again.
struct Finding {
    span: Span,
    message: String,
    strengthened: String,
    trace: Option<Trace>,
}

/// Maps a checker error to a governor trip, or swallows it into an E003
/// diagnostic (per-spec errors do not abort the whole pass).
fn check_err(e: CheckError, report: &mut Report) -> Result<(), Exhausted> {
    if let CheckError::ResourceExhausted { reason, .. } = &e {
        return Err(Exhausted(reason.to_string()));
    }
    report.push(Diagnostic::error("E003", format!("model error: {e}"), None));
    Ok(())
}

/// Runs vacuity detection over every compiled `SPEC`. Only passing
/// specifications are examined; the first vacuous occurrence of each is
/// reported, with the strengthened formula and an interesting witness.
pub(crate) fn run(compiled: &mut CompiledModel, report: &mut Report) -> Result<(), Exhausted> {
    let specs = compiled.specs.clone();
    let mut findings: Vec<Finding> = Vec::new();
    {
        let mut checker = Checker::new(&mut compiled.model);
        'specs: for (spec_index, spec) in specs.iter().enumerate() {
            let verdict = match checker.check(&spec.formula) {
                Ok(v) => v,
                Err(e) => {
                    check_err(e, report)?;
                    continue;
                }
            };
            if !verdict.holds() {
                // A failing spec is not vacuous; `smc check` reports it.
                continue;
            }
            // The spec's propositional leaves in label-registration
            // order (literal TRUE/FALSE leaves get no label).
            let leaves: Vec<&Expr> =
                spec.source.leaves().into_iter().filter(|e| !matches!(e, Expr::Bool(_))).collect();
            for occ in atom_occurrences(&spec.formula) {
                let Some(replacement) = occ.polarity.strengthening() else {
                    continue;
                };
                let strengthened = replace_and_simplify(&spec.formula, occ.index, &replacement);
                if strengthened == spec.formula {
                    continue;
                }
                let still_holds = match checker.check(&strengthened) {
                    Ok(v) => v.holds(),
                    Err(e) => {
                        check_err(e, report)?;
                        continue 'specs;
                    }
                };
                if !still_holds {
                    continue;
                }
                // Vacuous. An "interesting" witness for the original
                // spec is a witness of the strengthened formula; purely
                // propositional strengthenings have nothing to unroll.
                let trace = match checker.witness(&strengthened) {
                    Ok(t) => Some(t),
                    Err(CheckError::ResourceExhausted { reason, .. }) => {
                        return Err(Exhausted(reason.to_string()))
                    }
                    Err(_) => None,
                };
                let leaf = leaf_text(&occ.name, spec_index, &leaves);
                findings.push(Finding {
                    span: spec.span,
                    message: format!(
                        "specification passes vacuously: `{leaf}` does not affect it \
                         (replacing it with {} preserves the verdict)",
                        match replacement {
                            Ctl::True => "TRUE",
                            _ => "FALSE",
                        }
                    ),
                    strengthened: pretty_formula(&strengthened, spec_index, &leaves),
                    trace,
                });
                continue 'specs; // first vacuous occurrence per spec
            }
        }
    }
    for f in findings {
        let mut d = Diagnostic::warning("W020", f.message, Some(f.span))
            .with_note(format!("strengthened formula still holds: {}", f.strengthened));
        if let Some(trace) = &f.trace {
            d = d.with_note("interesting witness for the strengthened formula:");
            for line in render_trace(compiled, trace) {
                d = d.with_note(line);
            }
        }
        report.push(d);
    }
    Ok(())
}

/// Replaces occurrence `index` and lets the simplifying constructors
/// propagate the constant.
fn replace_and_simplify(formula: &Ctl, index: usize, with: &Ctl) -> Ctl {
    smc_logic::replace_atom_occurrence(formula, index, with)
}

/// Human text for the strengthened occurrence. Compiled spec leaves are
/// labelled `__spec{i}_{k}` where `k` indexes the spec's non-constant
/// leaves; anything else (e.g. a bare boolean variable used directly as
/// an atom) already reads fine.
fn leaf_text(atom: &str, spec_index: usize, leaves: &[&Expr]) -> String {
    let prefix = format!("__spec{spec_index}_");
    if let Some(rest) = atom.strip_prefix(&prefix) {
        if let Ok(k) = rest.parse::<usize>() {
            if let Some(leaf) = leaves.get(k) {
                return leaf.to_string();
            }
        }
    }
    atom.to_string()
}

/// Renders a checkable formula with the internal `__spec{i}_{k}` leaf
/// labels substituted back to their source text. Higher indices first,
/// so `__spec0_1` never clobbers the prefix of `__spec0_12`.
fn pretty_formula(f: &Ctl, spec_index: usize, leaves: &[&Expr]) -> String {
    let mut s = f.to_string();
    for (k, leaf) in leaves.iter().enumerate().rev() {
        let label = format!("__spec{spec_index}_{k}");
        let text = leaf.to_string();
        let wrapped = if matches!(leaf, Expr::Ident(_) | Expr::Bool(_) | Expr::Int(_)) {
            text
        } else {
            format!("({text})")
        };
        s = s.replace(&label, &wrapped);
    }
    s
}

/// Decoded state-by-state rendering with lasso markers.
fn render_trace(compiled: &CompiledModel, trace: &Trace) -> Vec<String> {
    let mut lines = Vec::with_capacity(trace.states.len() + 1);
    for (i, state) in trace.states.iter().enumerate() {
        let marker = if trace.loopback == Some(i) { " (loop starts here)" } else { "" };
        lines.push(format!("  state {i}: {}{marker}", compiled.render_state(state)));
    }
    if let Some(l) = trace.loopback {
        lines.push(format!("  -- loops back to state {l} --"));
    }
    lines
}
