//! Pass 1 — syntactic/semantic checks over the (flattened) SMV AST.
//!
//! Everything here is source-level: no BDDs are built. The pass finds
//! undeclared identifiers (E010), duplicate assignments (E011),
//! out-of-domain constants in assignments (E012), misplaced `next()`
//! (E002), unused and write-only variables (W001/W002), `case` branches
//! shadowed by an earlier literal `TRUE` guard (W003), circular `next()`
//! dependencies (W004) and comparisons that are constant because the
//! literal lies outside the variable's domain (W005).

use std::collections::{HashMap, HashSet};

use smc_smv::{Assign, AssignKind, CaseBranch, Decl, Expr, Module, Section, Span, VarType};

use crate::diag::{Diagnostic, Report};

/// Runs the syntactic pass over a flattened module.
pub(crate) fn run(module: &Module, report: &mut Report) {
    let mut pass = Pass::new(module);
    pass.walk_module(module);
    pass.finish(module, report);
}

/// Per-run state: symbol tables, read/write sets, findings.
struct Pass<'m> {
    /// Declared state variables, by name.
    vars: HashMap<&'m str, &'m Decl>,
    /// `DEFINE` macros, by name.
    defines: HashMap<&'m str, &'m Expr>,
    /// Every enum symbol, mapped to the variables whose domain holds it.
    enum_syms: HashMap<&'m str, Vec<&'m str>>,
    /// Variables read anywhere outside a `DEFINE` body.
    reads: HashSet<String>,
    /// Variables assigned by `ASSIGN`, `init(...)` or `next(...)`.
    writes: HashSet<String>,
    /// Defines referenced anywhere outside a `DEFINE` body.
    used_defines: HashSet<String>,
    /// Reads made by each `DEFINE` body: (variables, nested defines).
    define_uses: HashMap<String, (HashSet<String>, HashSet<String>)>,
    /// `(var, kind)` pairs already assigned, for E011.
    assigned: HashSet<(String, AssignKind)>,
    /// `next(x)` dependency edges `x → (y, span of the assign)` for W004.
    next_deps: HashMap<String, Vec<(String, Span)>>,
    /// Deduplicated findings (same code+span+message reported once).
    seen: HashSet<(&'static str, Option<Span>, String)>,
    diags: Vec<Diagnostic>,
}

/// Where an expression occurs, for context-sensitive rules.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    /// Span of the enclosing statement, attached to findings.
    span: Option<Span>,
    /// `next(...)` is legal here (TRANS only).
    allow_next: bool,
    /// The variable assigned by `next(var) := ...`, for W004 edges.
    next_assign_target: Option<&'a str>,
}

impl<'m> Pass<'m> {
    fn new(module: &'m Module) -> Pass<'m> {
        let mut vars = HashMap::new();
        let mut defines = HashMap::new();
        let mut enum_syms: HashMap<&str, Vec<&str>> = HashMap::new();
        for section in &module.sections {
            match section {
                Section::Var(decls) => {
                    for d in decls {
                        vars.insert(d.name.as_str(), d);
                        if let VarType::Enum(syms) = &d.ty {
                            for s in syms {
                                enum_syms.entry(s.as_str()).or_default().push(d.name.as_str());
                            }
                        }
                    }
                }
                Section::Define(defs) => {
                    for (name, body) in defs {
                        defines.insert(name.as_str(), body);
                    }
                }
                _ => {}
            }
        }
        Pass {
            vars,
            defines,
            enum_syms,
            reads: HashSet::new(),
            writes: HashSet::new(),
            used_defines: HashSet::new(),
            define_uses: HashMap::new(),
            assigned: HashSet::new(),
            next_deps: HashMap::new(),
            seen: HashSet::new(),
            diags: Vec::new(),
        }
    }

    fn report(&mut self, d: Diagnostic) {
        let key = (d.code, d.span, d.message.clone());
        if self.seen.insert(key) {
            self.diags.push(d);
        }
    }

    fn walk_module(&mut self, module: &'m Module) {
        // DEFINE bodies first: undeclared names in a macro are errors
        // even if the macro is never used, and the per-macro read sets
        // feed the transitive liveness computation.
        for section in &module.sections {
            if let Section::Define(defs) = section {
                for (name, body) in defs {
                    let mut var_reads = HashSet::new();
                    let mut def_reads = HashSet::new();
                    self.walk_define_body(body, &mut var_reads, &mut def_reads);
                    self.define_uses.insert(name.clone(), (var_reads, def_reads));
                }
            }
        }
        for section in &module.sections {
            match section {
                Section::Var(_) | Section::Define(_) => {}
                Section::Assign(assigns) => {
                    for a in assigns {
                        self.walk_assign(a);
                    }
                }
                Section::Init(e, span) => {
                    let ctx =
                        Ctx { span: Some(*span), allow_next: false, next_assign_target: None };
                    self.walk(e, ctx);
                }
                Section::Trans(e, span) => {
                    let ctx = Ctx { span: Some(*span), allow_next: true, next_assign_target: None };
                    self.walk(e, ctx);
                }
                Section::Fairness(e, span) => {
                    let ctx =
                        Ctx { span: Some(*span), allow_next: false, next_assign_target: None };
                    self.walk(e, ctx);
                }
                Section::Spec(spec, span) => {
                    let ctx =
                        Ctx { span: Some(*span), allow_next: false, next_assign_target: None };
                    for leaf in spec.leaves() {
                        self.walk(leaf, ctx);
                    }
                }
            }
        }
    }

    fn walk_assign(&mut self, a: &'m Assign) {
        let span = a.span;
        if !self.vars.contains_key(a.var.as_str()) {
            self.report(Diagnostic::error(
                "E010",
                format!("assignment to undeclared variable `{}`", a.var),
                Some(span),
            ));
        } else {
            self.writes.insert(a.var.clone());
        }
        if !self.assigned.insert((a.var.clone(), a.kind)) {
            let what = match a.kind {
                AssignKind::Init => "init",
                AssignKind::Next => "next",
            };
            self.report(Diagnostic::error(
                "E011",
                format!("duplicate assignment: `{what}({})` is assigned more than once", a.var),
                Some(span),
            ));
        }
        let target = match a.kind {
            AssignKind::Next => Some(a.var.as_str()),
            AssignKind::Init => None,
        };
        let ctx = Ctx { span: Some(span), allow_next: false, next_assign_target: target };
        self.walk(&a.rhs, ctx);
        if let Some(decl) = self.vars.get(a.var.as_str()).copied() {
            self.check_assign_values(decl, &a.rhs, span);
        }
    }

    /// E012: constants in *value position* of an assignment RHS that lie
    /// outside the assigned variable's domain. Value positions are the
    /// RHS itself, `case` branch values and set elements; a constant in
    /// a guard or arithmetic subexpression is not a stored value.
    fn check_assign_values(&mut self, decl: &'m Decl, rhs: &'m Expr, span: Span) {
        match rhs {
            Expr::Case(branches) => {
                for b in branches {
                    self.check_assign_values(decl, &b.value, b.span);
                }
            }
            Expr::Set(elems) => {
                for e in elems {
                    self.check_assign_values(decl, e, span);
                }
            }
            Expr::Int(k) => {
                if let VarType::Range(lo, hi) = decl.ty {
                    if *k < lo || *k > hi {
                        self.report(Diagnostic::error(
                            "E012",
                            format!(
                                "constant {k} is outside the domain {lo}..{hi} of `{}`",
                                decl.name
                            ),
                            Some(span),
                        ));
                    }
                }
            }
            Expr::Ident(s) => {
                // An enum symbol assigned to a variable of a *different*
                // enum type can never be stored.
                if let VarType::Enum(syms) = &decl.ty {
                    let is_value = !self.vars.contains_key(s.as_str())
                        && !self.defines.contains_key(s.as_str())
                        && self.enum_syms.contains_key(s.as_str());
                    if is_value && !syms.contains(s) {
                        self.report(Diagnostic::error(
                            "E012",
                            format!("symbol `{s}` is not in the domain of `{}`", decl.name),
                            Some(span),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    /// Walks a `DEFINE` body, recording reads without marking liveness
    /// (a macro read only counts once the macro itself is used).
    fn walk_define_body(
        &mut self,
        e: &'m Expr,
        var_reads: &mut HashSet<String>,
        def_reads: &mut HashSet<String>,
    ) {
        match e {
            Expr::Ident(name) => {
                if self.vars.contains_key(name.as_str()) {
                    var_reads.insert(name.clone());
                } else if self.defines.contains_key(name.as_str()) {
                    def_reads.insert(name.clone());
                } else if !self.enum_syms.contains_key(name.as_str()) {
                    self.report(Diagnostic::error(
                        "E010",
                        format!("unknown identifier `{name}` in DEFINE"),
                        None,
                    ));
                }
            }
            Expr::Next(name) => {
                self.report(Diagnostic::error(
                    "E002",
                    format!("`next({name})` is only allowed inside TRANS"),
                    None,
                ));
            }
            _ => {
                for child in children(e) {
                    self.walk_define_body(child, var_reads, def_reads);
                }
            }
        }
    }

    fn walk(&mut self, e: &'m Expr, ctx: Ctx<'m>) {
        match e {
            Expr::Bool(_) | Expr::Int(_) => {}
            Expr::Ident(name) => {
                if self.vars.contains_key(name.as_str()) {
                    self.reads.insert(name.clone());
                } else if self.defines.contains_key(name.as_str()) {
                    self.used_defines.insert(name.clone());
                } else if !self.enum_syms.contains_key(name.as_str()) {
                    self.report(Diagnostic::error(
                        "E010",
                        format!("unknown identifier `{name}`"),
                        ctx.span,
                    ));
                }
            }
            Expr::Next(name) => {
                if self.vars.contains_key(name.as_str()) {
                    self.reads.insert(name.clone());
                } else {
                    self.report(Diagnostic::error(
                        "E010",
                        format!("`next({name})` refers to an undeclared variable"),
                        ctx.span,
                    ));
                }
                if !ctx.allow_next {
                    self.report(Diagnostic::error(
                        "E002",
                        format!("`next({name})` is only allowed inside TRANS"),
                        ctx.span,
                    ));
                }
                // Even though the compiler rejects next() in an assign
                // RHS, record the dependency so the circularity is
                // reported alongside the placement error.
                if let (Some(target), Some(span)) = (ctx.next_assign_target, ctx.span) {
                    self.next_deps
                        .entry(target.to_string())
                        .or_default()
                        .push((name.clone(), span));
                }
            }
            Expr::Case(branches) => {
                let mut shadowed_from = None;
                for (i, b) in branches.iter().enumerate() {
                    if let Some(first_true) = shadowed_from {
                        self.report(Diagnostic::warning(
                            "W003",
                            format!(
                                "`case` branch {} is unreachable: branch {} has a literal \
                                 TRUE guard",
                                i + 1,
                                first_true + 1
                            ),
                            Some(b.span),
                        ));
                    }
                    let bctx = Ctx { span: Some(b.span), ..ctx };
                    self.walk(&b.condition, bctx);
                    self.walk(&b.value, bctx);
                    if shadowed_from.is_none() && matches!(b.condition, Expr::Bool(true)) {
                        shadowed_from = Some(i);
                    }
                }
            }
            Expr::Eq(a, b)
            | Expr::Neq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b) => {
                self.check_constant_comparison(e, a, b, ctx.span);
                self.walk(a, ctx);
                self.walk(b, ctx);
            }
            _ => {
                for child in children(e) {
                    self.walk(child, ctx);
                }
            }
        }
    }

    /// W005: a comparison of a variable against a literal that is decided
    /// by the variable's domain alone.
    fn check_constant_comparison(
        &mut self,
        cmp: &'m Expr,
        a: &'m Expr,
        b: &'m Expr,
        span: Option<Span>,
    ) {
        // Normalize to (variable, literal); flip the ordering when the
        // literal is on the left.
        let (var, lit, flipped) = match (a, b) {
            (Expr::Ident(v), lit @ (Expr::Int(_) | Expr::Ident(_)))
                if self.vars.contains_key(v.as_str()) =>
            {
                (v.as_str(), lit, false)
            }
            (lit @ Expr::Int(_), Expr::Ident(v)) if self.vars.contains_key(v.as_str()) => {
                (v.as_str(), lit, true)
            }
            _ => return,
        };
        let decl = self.vars[var];
        let verdict = match (&decl.ty, lit) {
            (VarType::Range(lo, hi), Expr::Int(k)) => {
                let (lo, hi, k) = (*lo, *hi, *k);
                match cmp {
                    Expr::Eq(..) if k < lo || k > hi => Some(false),
                    Expr::Neq(..) if k < lo || k > hi => Some(true),
                    Expr::Lt(..) | Expr::Le(..) | Expr::Gt(..) | Expr::Ge(..) => {
                        // `var OP k` (or its flip) over the whole domain.
                        let decide = |f: &dyn Fn(i64) -> bool| {
                            if f(lo) && f(hi) {
                                Some(true)
                            } else if !f(lo) && !f(hi) {
                                Some(false)
                            } else {
                                None
                            }
                        };
                        match (cmp, flipped) {
                            (Expr::Lt(..), false) => decide(&|v| v < k),
                            (Expr::Lt(..), true) => decide(&|v| k < v),
                            (Expr::Le(..), false) => decide(&|v| v <= k),
                            (Expr::Le(..), true) => decide(&|v| k <= v),
                            (Expr::Gt(..), false) => decide(&|v| v > k),
                            (Expr::Gt(..), true) => decide(&|v| k > v),
                            (Expr::Ge(..), false) => decide(&|v| v >= k),
                            (Expr::Ge(..), true) => decide(&|v| k >= v),
                            _ => None,
                        }
                    }
                    _ => None,
                }
            }
            (VarType::Enum(syms), Expr::Ident(s)) => {
                let is_foreign_symbol = !self.vars.contains_key(s.as_str())
                    && !self.defines.contains_key(s.as_str())
                    && self.enum_syms.contains_key(s.as_str())
                    && !syms.contains(s);
                match (cmp, is_foreign_symbol) {
                    (Expr::Eq(..), true) => Some(false),
                    (Expr::Neq(..), true) => Some(true),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(value) = verdict {
            let domain = match &decl.ty {
                VarType::Range(lo, hi) => format!("{lo}..{hi}"),
                VarType::Enum(syms) => format!("{{{}}}", syms.join(", ")),
                _ => String::new(),
            };
            self.report(Diagnostic::warning(
                "W005",
                format!(
                    "comparison `{cmp}` is always {}: `{var}` ranges over {domain}",
                    if value { "TRUE" } else { "FALSE" }
                ),
                span,
            ));
        }
    }

    /// Emits the whole-module findings (liveness, circularity) and moves
    /// everything into the report.
    fn finish(mut self, module: &'m Module, report: &mut Report) {
        // Close the read set over used DEFINE macros.
        let mut frontier: Vec<String> = self.used_defines.iter().cloned().collect();
        let mut expanded: HashSet<String> = HashSet::new();
        while let Some(name) = frontier.pop() {
            if !expanded.insert(name.clone()) {
                continue;
            }
            if let Some((var_reads, def_reads)) = self.define_uses.get(&name) {
                self.reads.extend(var_reads.iter().cloned());
                frontier.extend(def_reads.iter().cloned());
            }
        }

        // W001 / W002, in declaration order.
        for section in &module.sections {
            if let Section::Var(decls) = section {
                for d in decls {
                    if matches!(d.ty, VarType::Instance(..)) || self.reads.contains(&d.name) {
                        continue;
                    }
                    if self.writes.contains(&d.name) {
                        self.report(
                            Diagnostic::warning(
                                "W002",
                                format!("variable `{}` is assigned but never read", d.name),
                                Some(d.span),
                            )
                            .with_note(
                                "its value cannot influence any specification or transition",
                            ),
                        );
                    } else {
                        self.report(Diagnostic::warning(
                            "W001",
                            format!("variable `{}` is declared but never used", d.name),
                            Some(d.span),
                        ));
                    }
                }
            }
        }

        // W004: cycles in the next() dependency graph.
        self.report_next_cycles();

        for d in self.diags {
            report.push(d);
        }
    }

    /// DFS over `next_deps`, reporting each dependency cycle once at the
    /// span of the assignment whose edge closes it.
    fn report_next_cycles(&mut self) {
        /// 1 = on the current DFS path, 2 = fully explored.
        fn dfs(
            node: &str,
            deps: &HashMap<String, Vec<(String, Span)>>,
            state: &mut HashMap<String, u8>,
            path: &mut Vec<String>,
            found: &mut Vec<(Vec<String>, Span)>,
        ) {
            state.insert(node.to_string(), 1);
            path.push(node.to_string());
            if let Some(edges) = deps.get(node) {
                for (dep, span) in edges {
                    match state.get(dep.as_str()).copied().unwrap_or(0) {
                        0 => dfs(dep, deps, state, path, found),
                        1 => {
                            let start = path.iter().position(|n| n == dep).unwrap_or(0);
                            found.push((path[start..].to_vec(), *span));
                        }
                        _ => {}
                    }
                }
            }
            path.pop();
            state.insert(node.to_string(), 2);
        }

        let mut found: Vec<(Vec<String>, Span)> = Vec::new();
        let mut state: HashMap<String, u8> = HashMap::new();
        let mut roots: Vec<String> = self.next_deps.keys().cloned().collect();
        roots.sort();
        for root in roots {
            if state.get(root.as_str()).copied().unwrap_or(0) == 0 {
                dfs(&root, &self.next_deps, &mut state, &mut Vec::new(), &mut found);
            }
        }
        for (cycle, span) in found {
            let chain = cycle
                .iter()
                .chain(cycle.first())
                .map(|n| format!("next({n})"))
                .collect::<Vec<_>>()
                .join(" -> ");
            self.report(
                Diagnostic::warning(
                    "W004",
                    format!("circular `next()` dependency: {chain}"),
                    Some(span),
                )
                .with_note("the assignments cannot be evaluated in any order"),
            );
        }
    }
}

/// All direct subexpressions, for generic traversal.
fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Bool(_) | Expr::Int(_) | Expr::Ident(_) | Expr::Next(_) => Vec::new(),
        Expr::Not(a) => vec![a],
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Implies(a, b)
        | Expr::Iff(a, b)
        | Expr::Eq(a, b)
        | Expr::Neq(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Mod(a, b) => vec![a, b],
        Expr::Case(branches) => {
            let mut out = Vec::with_capacity(branches.len() * 2);
            for CaseBranch { condition, value, .. } in branches {
                out.push(condition);
                out.push(value);
            }
            out
        }
        Expr::Set(elems) => elems.iter().collect(),
    }
}
