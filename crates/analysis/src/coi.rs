//! Cone-of-influence planning: which variables each `SPEC` actually
//! needs, which sliced module to check it on, and the W021/W022
//! dataflow warnings.
//!
//! ## Soundness
//!
//! A cone is the backward closure of the spec's support over the
//! [`DepGraph`](crate::DepGraph), seeded with the support of every
//! `FAIRNESS` constraint (fair-path quantification sees all of them).
//! Dropped variables are constrained only by their own functional
//! `ASSIGN`s — total, so the dropped part of the state always has at
//! least one successor and cannot change the cone's behaviour — or by
//! raw constraints whose support lies *wholly* outside the cone (the
//! mutual-coupling rule in [`DepGraph::build`](crate::DepGraph::build)
//! guarantees a raw constraint is never split by a cone). A wholly
//! dropped raw constraint could still matter (it may be unsatisfiable,
//! or break totality), so the planner refuses to slice in that case and
//! falls back to the full model. Variables frozen at one literal value
//! by [`frozen_constants`] are folded into their readers instead of
//! being kept.

use std::collections::BTreeMap;

use smc_smv::{Expr, Module, Section};

use crate::dataflow::{frozen_constants, DepGraph};
use crate::diag::{Diagnostic, Report};

/// The checking plan for one `SPEC` under cone-of-influence reduction.
#[derive(Debug, Clone)]
pub struct SpecCoi {
    /// 0-based index of the spec in source order.
    pub index: usize,
    /// The sliced module to check the spec on, or `None` when the
    /// planner fell back to the full model.
    pub module: Option<Module>,
    /// Number of variables in the slice (= total when falling back).
    pub kept: usize,
    /// One human-readable report line (printed to stderr by `--coi`).
    pub report: String,
}

/// A whole-model cone-of-influence plan: one entry per `SPEC`.
#[derive(Debug, Clone)]
pub struct CoiPlan {
    /// Per-spec plans, in source order.
    pub specs: Vec<SpecCoi>,
    /// Number of declared variables in the full model.
    pub total_vars: usize,
}

impl CoiPlan {
    /// True when at least one spec gets a genuine slice.
    pub fn any_sliced(&self) -> bool {
        self.specs.iter().any(|s| s.module.is_some())
    }
}

/// Plans cone-of-influence checking for every `SPEC` of a flattened
/// module.
pub fn plan_coi(module: &Module) -> CoiPlan {
    let graph = DepGraph::build(module);
    let consts = frozen_constants(module);
    let folded: BTreeMap<String, Expr> =
        consts.iter().filter_map(|(v, c)| Some((v.clone(), c.to_expr()?))).collect();
    let fold_names = folded.keys().cloned().collect();
    let total = graph.vars.len();

    let specs = graph
        .spec_support
        .iter()
        .enumerate()
        .map(|(index, support)| {
            let seeds = support.union(&graph.fairness_support);
            let cone = graph.cone_excluding(seeds, &fold_names);
            if cone.is_empty() {
                return SpecCoi {
                    index,
                    module: None,
                    kept: total,
                    report: format!("coi: spec {index} uses the full model (empty cone)"),
                };
            }
            let dropped_constraint = graph
                .constraint_support
                .iter()
                .any(|s| !s.is_empty() && s.intersection(&cone).next().is_none());
            if dropped_constraint {
                return SpecCoi {
                    index,
                    module: None,
                    kept: total,
                    report: format!(
                        "coi: spec {index} uses the full model \
                         (raw INIT/TRANS constraint outside the cone)"
                    ),
                };
            }
            let kept = cone.len();
            let sliced = smc_smv::slice_module(module, &cone, Some(index), &folded);
            SpecCoi {
                index,
                module: Some(sliced),
                kept,
                report: format!(
                    "coi: spec {index} uses {kept}/{total} vars ({} sliced away)",
                    total - kept
                ),
            }
        })
        .collect();
    CoiPlan { specs, total_vars: total }
}

/// Plans cone-of-influence checking for an ad-hoc formula over the
/// given atoms. Atoms name BDD bits: either a variable, or `var.N` for
/// one bit of a multi-bit encoding. Returns `None` (check the full
/// model) when an atom cannot be resolved to a variable, the cone is
/// empty, or a raw constraint falls outside it; otherwise the sliced
/// module (with every `SPEC` dropped) and a report line.
pub fn plan_adhoc_coi(module: &Module, atoms: &[String]) -> Option<(Module, String)> {
    let graph = DepGraph::build(module);
    let consts = frozen_constants(module);
    let folded: BTreeMap<String, Expr> =
        consts.iter().filter_map(|(v, c)| Some((v.clone(), c.to_expr()?))).collect();
    let fold_names = folded.keys().cloned().collect();

    let mut seeds = Vec::new();
    for atom in atoms {
        seeds.push(resolve_atom(&graph, atom)?);
    }
    let all_seeds: Vec<String> =
        seeds.into_iter().chain(graph.fairness_support.iter().cloned()).collect();
    let cone = graph.cone_excluding(all_seeds.iter(), &fold_names);
    if cone.is_empty() {
        return None;
    }
    let dropped_constraint = graph
        .constraint_support
        .iter()
        .any(|s| !s.is_empty() && s.intersection(&cone).next().is_none());
    if dropped_constraint {
        return None;
    }
    let kept = cone.len();
    let total = graph.vars.len();
    let sliced = smc_smv::slice_module(module, &cone, None, &folded);
    Some((sliced, format!("coi: formula uses {kept}/{total} vars ({} sliced away)", total - kept)))
}

/// Maps an ad-hoc CTL atom to the variable that owns it.
fn resolve_atom(graph: &DepGraph, atom: &str) -> Option<String> {
    if graph.deps.contains_key(atom) {
        return Some(atom.to_string());
    }
    // `name.N`: one bit of a range/enum encoding.
    let (head, bit) = atom.rsplit_once('.')?;
    if bit.chars().all(|c| c.is_ascii_digit()) && graph.deps.contains_key(head) {
        return Some(head.to_string());
    }
    None
}

/// The dataflow warning pass: W021 `constant-variable` for variables
/// frozen at one value, W022 `irrelevant-to-all-specs` for variables
/// the model reads but no spec's cone (fairness included) contains.
pub(crate) fn run(module: &Module, report: &mut Report) {
    let graph = DepGraph::build(module);
    let consts = frozen_constants(module);

    // Relevance for W022 uses the *unfolded* cones: a frozen variable
    // feeding a spec is W021, not W022 material.
    let mut relevant = std::collections::BTreeSet::new();
    for support in &graph.spec_support {
        relevant.extend(graph.cone(support.union(&graph.fairness_support)));
    }

    for section in &module.sections {
        let Section::Var(decls) = section else { continue };
        for d in decls {
            if let Some(c) = consts.get(&d.name) {
                report.push(
                    Diagnostic::warning(
                        "W021",
                        format!("variable `{}` is frozen at `{c}`: no assignment moves it", d.name),
                        Some(d.span),
                    )
                    .with_note(format!("every reachable state has {}={c}", d.name))
                    .with_note("`--coi` folds the constant into its readers"),
                );
            } else if !graph.spec_support.is_empty()
                && !relevant.contains(&d.name)
                && graph.read_anywhere.contains(&d.name)
            {
                report.push(
                    Diagnostic::warning(
                        "W022",
                        format!("variable `{}` influences no specification", d.name),
                        Some(d.span),
                    )
                    .with_note("it lies outside every spec's cone of influence (fairness included)")
                    .with_note("`--coi` checks run without it"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        smc_smv::flatten(&smc_smv::parse(src).expect("parse")).expect("flatten")
    }

    const TWO_COMPONENTS: &str = "MODULE main\n\
        VAR a : boolean;\nVAR b : boolean;\n\
        ASSIGN\n\
        init(a) := FALSE; next(a) := !a;\n\
        init(b) := FALSE; next(b) := !b;\n\
        SPEC EF a\nSPEC EF b\n";

    #[test]
    fn independent_components_get_disjoint_slices() {
        let plan = plan_coi(&module(TWO_COMPONENTS));
        assert_eq!(plan.total_vars, 2);
        assert_eq!(plan.specs.len(), 2);
        for (spec, var) in plan.specs.iter().zip(["a", "b"]) {
            assert_eq!(spec.kept, 1, "{}", spec.report);
            let m = spec.module.as_ref().expect("sliced");
            let compiled = smc_smv::compile_module(m).expect("compiles");
            assert_eq!(compiled.var_names(), vec![var]);
        }
    }

    #[test]
    fn fairness_support_lands_in_every_cone() {
        let plan = plan_coi(&module(
            "MODULE main\n\
             VAR a : boolean;\nVAR f : boolean;\n\
             ASSIGN\n\
             init(a) := FALSE; next(a) := !a;\n\
             init(f) := FALSE; next(f) := {FALSE, TRUE};\n\
             FAIRNESS f\n\
             SPEC EF a\n",
        ));
        assert_eq!(plan.specs[0].kept, 2, "fairness keeps f: {}", plan.specs[0].report);
    }

    #[test]
    fn raw_constraint_outside_the_cone_forces_full_model() {
        let plan = plan_coi(&module(
            "MODULE main\n\
             VAR a : boolean;\nVAR x : boolean;\n\
             ASSIGN init(a) := FALSE; next(a) := !a;\n\
             TRANS !next(x)\n\
             SPEC EF a\n",
        ));
        assert!(plan.specs[0].module.is_none(), "{}", plan.specs[0].report);
        assert!(plan.specs[0].report.contains("raw INIT/TRANS"), "{}", plan.specs[0].report);
    }

    #[test]
    fn constants_are_folded_out_of_the_slice() {
        let plan = plan_coi(&module(
            "MODULE main\n\
             VAR k : boolean;\nVAR a : boolean;\n\
             ASSIGN\n\
             init(k) := FALSE; next(k) := FALSE;\n\
             init(a) := FALSE; next(a) := case k : TRUE; TRUE : !a; esac;\n\
             SPEC EF a\n",
        ));
        let spec = &plan.specs[0];
        assert_eq!(spec.kept, 1, "{}", spec.report);
        let compiled = smc_smv::compile_module(spec.module.as_ref().expect("sliced"))
            .expect("folded slice compiles");
        assert_eq!(compiled.var_names(), vec!["a"]);
    }

    #[test]
    fn spec_over_a_constant_only_falls_back_to_the_full_model() {
        let plan = plan_coi(&module(
            "MODULE main\nVAR k : boolean;\n\
             ASSIGN init(k) := FALSE; next(k) := FALSE;\n\
             SPEC AG !k\n",
        ));
        assert!(plan.specs[0].module.is_none(), "{}", plan.specs[0].report);
        assert!(plan.specs[0].report.contains("empty cone"), "{}", plan.specs[0].report);
    }

    #[test]
    fn adhoc_atoms_resolve_through_bit_suffixes() {
        let m = module(
            "MODULE main\n\
             VAR n : 0..3;\nVAR b : boolean;\n\
             ASSIGN\n\
             init(n) := 0; next(n) := (n + 1) mod 4;\n\
             init(b) := FALSE; next(b) := !b;\n\
             SPEC EF b\n",
        );
        let (sliced, report) = plan_adhoc_coi(&m, &["n.0".to_string()]).expect("bit atom resolves");
        assert!(report.contains("1/2"), "{report}");
        let compiled = smc_smv::compile_module(&sliced).expect("compiles");
        assert_eq!(compiled.var_names(), vec!["n"]);
        assert!(compiled.specs.is_empty(), "ad-hoc slices drop every SPEC");
        assert!(plan_adhoc_coi(&m, &["__spec0_0".to_string()]).is_none(), "labels fall back");
    }
}
