//! Pass 2 — symbolic checks over the compiled model.
//!
//! These checks need BDDs: the reachable state set, the transition
//! relation and the recorded `ASSIGN` branch guards. Everything runs
//! under the manager's resource governor; a budget trip surfaces as
//! [`Exhausted`] so the driver can report partial results with exit
//! code 3.

use smc_bdd::BddError;
use smc_kripke::KripkeError;
use smc_smv::{AssignKind, CompiledModel};

use crate::diag::{Diagnostic, Report};

/// The governor stopped the pass; carries the human-readable reason.
pub(crate) struct Exhausted(pub String);

/// Maps a model-layer error to either a governor trip or an `E003`
/// diagnostic pushed into the report.
fn model_err(e: KripkeError, report: &mut Report) -> Result<(), Exhausted> {
    if let KripkeError::Bdd(BddError::ResourceExhausted(reason)) = &e {
        return Err(Exhausted(reason.to_string()));
    }
    report.push(Diagnostic::error("E003", format!("model error: {e}"), None));
    Ok(())
}

/// Runs the symbolic pass: W010 (non-total transition relation, with a
/// concrete stuck state), W011 (`case` branches never taken on any
/// relevant state) and W012 (unsatisfiable or unreachable fairness
/// constraints).
pub(crate) fn run(compiled: &mut CompiledModel, report: &mut Report) -> Result<(), Exhausted> {
    // W010: reachable deadlocks. The model was compiled with
    // `allow_deadlock`, so this is the check the strict loader skipped.
    let dead = match compiled.model.deadlocked() {
        Ok(d) => d,
        Err(e) => return model_err(e, report),
    };
    if !dead.is_false() {
        let count = compiled.model.state_count(dead);
        let mut d = Diagnostic::warning(
            "W010",
            format!(
                "transition relation is not total: {count} reachable state{} \
                 {} no successor",
                if count == 1.0 { "" } else { "s" },
                if count == 1.0 { "has" } else { "have" },
            ),
            None,
        );
        if let Some(state) = compiled.model.pick_state(dead) {
            d = d.with_note(format!("stuck state: {}", compiled.render_state(&state)));
        }
        d = d.with_note("CTL semantics require a total relation; `smc check` rejects this model");
        report.push(d);
    }

    let reach = match compiled.model.reachable() {
        Ok(r) => r,
        Err(e) => return model_err(e, report),
    };
    let init = compiled.model.init();

    // W011: recorded `case` branch guards that no relevant state ever
    // satisfies. A branch with an unsatisfiable guard (`taken` = ⊥) is
    // left to the syntactic shadowing/constant checks — reporting it
    // here too would double up — and literal `TRUE` catch-all defaults
    // are skipped: being dead in a correct model is their purpose.
    for b in &compiled.branches {
        if b.taken.is_false() || b.default {
            continue;
        }
        let (relevant, relevant_name) = match b.kind {
            AssignKind::Init => (init, "initial"),
            AssignKind::Next => (reach, "reachable"),
        };
        let overlap = compiled.model.manager_mut().and(b.taken, relevant);
        if overlap.is_false() {
            report.push(
                Diagnostic::warning(
                    "W011",
                    format!(
                        "`case` branch {} of `{}({})` is never taken",
                        b.index + 1,
                        match b.kind {
                            AssignKind::Init => "init",
                            AssignKind::Next => "next",
                        },
                        b.var
                    ),
                    Some(b.span),
                )
                .with_note(format!("no {relevant_name} state satisfies its guard")),
            );
        }
        if let Err(BddError::ResourceExhausted(reason)) =
            compiled.model.manager_mut().check_budget()
        {
            return Err(Exhausted(reason.to_string()));
        }
    }

    // W012: fairness constraints that admit no (reachable) state make
    // the fair-path semantics degenerate.
    let fairness: Vec<_> = compiled.model.fairness().to_vec();
    for (i, f) in fairness.iter().enumerate() {
        let mgr = compiled.model.manager_mut();
        let problem = if f.is_false() {
            Some("is unsatisfiable (equivalent to FALSE)")
        } else if mgr.and(*f, reach).is_false() {
            Some("is satisfied by no reachable state")
        } else {
            None
        };
        if let Some(what) = problem {
            report.push(
                Diagnostic::warning(
                    "W012",
                    format!("fairness constraint {what}"),
                    compiled.fairness_spans.get(i).copied(),
                )
                .with_note(
                    "no fair path exists, so every specification is checked \
                     over an empty fair state set",
                ),
            );
        }
        if let Err(BddError::ResourceExhausted(reason)) =
            compiled.model.manager_mut().check_budget()
        {
            return Err(Exhausted(reason.to_string()));
        }
    }
    Ok(())
}
