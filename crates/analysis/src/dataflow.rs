//! Model dataflow: the variable dependency graph and the constant
//! propagation fixpoint.
//!
//! Everything here is source-level, computed over the flattened AST —
//! no BDDs are built. The [`DepGraph`] records, for every state
//! variable, which variables its `init`/`next` assignments read
//! (`DEFINE` macros are expanded transitively), plus the support sets
//! of every `SPEC` and `FAIRNESS` constraint. Raw `INIT`/`TRANS`
//! constraints couple every variable they mention with every other: a
//! relational constraint cannot be attributed to a single variable, so
//! its support is treated as mutually dependent. That rule is what
//! makes cone-of-influence slicing ([`crate::plan_coi`]) sound: a raw
//! constraint is always either wholly inside or wholly outside a cone.
//!
//! [`frozen_constants`] runs an optimistic fixpoint that finds
//! variables provably stuck at one value on every path: candidates
//! start out "frozen at their initial value" and are demoted whenever
//! some assignment can move them (or their value cannot be evaluated to
//! a literal). The result is sound by induction on time.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use smc_smv::{Assign, AssignKind, CaseBranch, Expr, Module, Section, Spec, VarType};

/// One value a variable can be frozen to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstVal {
    /// A boolean literal.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// An enumeration symbol.
    Sym(String),
}

impl ConstVal {
    /// The value as an SMV expression literal, when one exists.
    ///
    /// Enum symbols are *not* foldable: substituting the symbol into an
    /// expression only compiles while some kept variable's domain still
    /// declares it, so cone slicing keeps the variable instead.
    pub fn to_expr(&self) -> Option<Expr> {
        match self {
            ConstVal::Bool(b) => Some(Expr::Bool(*b)),
            ConstVal::Int(k) => Some(Expr::Int(*k)),
            ConstVal::Sym(_) => None,
        }
    }
}

impl std::fmt::Display for ConstVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstVal::Bool(true) => write!(f, "TRUE"),
            ConstVal::Bool(false) => write!(f, "FALSE"),
            ConstVal::Int(k) => write!(f, "{k}"),
            ConstVal::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// The variable dependency graph of one flattened module.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Every declared state variable, in declaration order.
    pub vars: Vec<String>,
    /// `var → vars read by the expressions that constrain it`: the RHS
    /// of its `init`/`next` assignments, and the full support of every
    /// raw `INIT`/`TRANS` constraint that mentions it.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// Per-`SPEC` support sets, in source order.
    pub spec_support: Vec<BTreeSet<String>>,
    /// Union of the support of every `FAIRNESS` constraint.
    pub fairness_support: BTreeSet<String>,
    /// Support of each raw `INIT`/`TRANS` section, in source order.
    pub constraint_support: Vec<BTreeSet<String>>,
    /// Variables read anywhere (assignments, constraints, fairness,
    /// specs), with `DEFINE` reads counted only when the macro is used.
    pub read_anywhere: BTreeSet<String>,
}

impl DepGraph {
    /// Builds the graph for a flattened module.
    pub fn build(module: &Module) -> DepGraph {
        let support = SupportMap::new(module);
        let mut vars = Vec::new();
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for section in &module.sections {
            if let Section::Var(decls) = section {
                for d in decls {
                    vars.push(d.name.clone());
                    deps.entry(d.name.clone()).or_default();
                }
            }
        }

        let mut spec_support = Vec::new();
        let mut fairness_support = BTreeSet::new();
        let mut constraint_support = Vec::new();
        let mut read_anywhere = BTreeSet::new();
        for section in &module.sections {
            match section {
                Section::Var(_) | Section::Define(_) => {}
                Section::Assign(assigns) => {
                    for a in assigns {
                        let reads = support.of_expr(&a.rhs);
                        read_anywhere.extend(reads.iter().cloned());
                        deps.entry(a.var.clone()).or_default().extend(reads);
                    }
                }
                Section::Init(e, _) | Section::Trans(e, _) => {
                    let reads = support.of_expr(e);
                    read_anywhere.extend(reads.iter().cloned());
                    // A relational constraint couples its whole support:
                    // each mentioned variable depends on every other.
                    for v in &reads {
                        deps.entry(v.clone()).or_default().extend(reads.iter().cloned());
                    }
                    constraint_support.push(reads);
                }
                Section::Fairness(e, _) => {
                    let reads = support.of_expr(e);
                    read_anywhere.extend(reads.iter().cloned());
                    fairness_support.extend(reads);
                }
                Section::Spec(spec, _) => {
                    let reads = support.of_spec(spec);
                    read_anywhere.extend(reads.iter().cloned());
                    spec_support.push(reads);
                }
            }
        }
        DepGraph { vars, deps, spec_support, fairness_support, constraint_support, read_anywhere }
    }

    /// The backward closure of `seeds` over the dependency edges: every
    /// variable whose value can influence some seed.
    pub fn cone<'a>(&self, seeds: impl IntoIterator<Item = &'a String>) -> BTreeSet<String> {
        self.cone_excluding(seeds, &BTreeSet::new())
    }

    /// [`DepGraph::cone`], but variables in `excluded` are neither added
    /// nor traversed — used to fold frozen constants out of a slice
    /// (their dependencies cannot matter once they are literals).
    pub fn cone_excluding<'a>(
        &self,
        seeds: impl IntoIterator<Item = &'a String>,
        excluded: &BTreeSet<String>,
    ) -> BTreeSet<String> {
        let mut cone = BTreeSet::new();
        let mut frontier: Vec<&String> =
            seeds.into_iter().filter(|v| self.deps.contains_key(*v)).collect();
        while let Some(v) = frontier.pop() {
            if excluded.contains(v) || !cone.insert(v.clone()) {
                continue;
            }
            if let Some(reads) = self.deps.get(v) {
                frontier.extend(reads.iter().filter(|r| !cone.contains(*r)));
            }
        }
        cone
    }

    /// Number of directed dependency edges (self-edges included).
    pub fn edge_count(&self) -> usize {
        self.deps.values().map(BTreeSet::len).sum()
    }

    /// Strongly connected components in reverse topological order
    /// (callees before callers), each sorted by name — iterative
    /// Tarjan over the declaration-ordered vertex list.
    pub fn sccs(&self) -> Vec<Vec<String>> {
        let index_of: HashMap<&str, usize> =
            self.vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
        let succs: Vec<Vec<usize>> = self
            .vars
            .iter()
            .map(|v| {
                self.deps
                    .get(v)
                    .map(|reads| reads.iter().filter_map(|r| index_of.get(r.as_str()).copied()))
                    .into_iter()
                    .flatten()
                    .collect()
            })
            .collect();

        let n = self.vars.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<String>> = Vec::new();

        // Explicit DFS frames: (vertex, next successor position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(frame) = frames.last_mut() {
                let (v, pos) = (frame.0, frame.1);
                if pos == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succs[v].get(pos) {
                    frame.1 += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().unwrap_or(v);
                            on_stack[w] = false;
                            comp.push(self.vars[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Renders the graph in Graphviz DOT format: one node per variable,
    /// one edge per dependency (self-loops omitted for readability),
    /// with multi-variable SCCs grouped as clusters.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph deps {\n  rankdir=LR;\n  node [shape=box];\n");
        let mut clustered: BTreeSet<String> = BTreeSet::new();
        for (i, scc) in self.sccs().iter().enumerate() {
            if scc.len() > 1 {
                out.push_str(&format!("  subgraph cluster_{i} {{\n    label=\"scc\";\n"));
                for v in scc {
                    out.push_str(&format!("    \"{v}\";\n"));
                    clustered.insert(v.clone());
                }
                out.push_str("  }\n");
            }
        }
        for v in &self.vars {
            if !clustered.contains(v) {
                out.push_str(&format!("  \"{v}\";\n"));
            }
        }
        for v in &self.vars {
            if let Some(reads) = self.deps.get(v) {
                for r in reads {
                    if r != v {
                        out.push_str(&format!("  \"{v}\" -> \"{r}\";\n"));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// `DEFINE`-transitive support computation for expressions and specs.
struct SupportMap<'m> {
    vars: HashSet<&'m str>,
    defines: HashMap<&'m str, &'m Expr>,
    /// Per-macro variable support, memoized lazily (cycle-safe: a macro
    /// currently being expanded contributes nothing to itself).
    memo: std::cell::RefCell<HashMap<String, BTreeSet<String>>>,
}

impl<'m> SupportMap<'m> {
    fn new(module: &'m Module) -> SupportMap<'m> {
        let mut vars = HashSet::new();
        let mut defines = HashMap::new();
        for section in &module.sections {
            match section {
                Section::Var(decls) => {
                    for d in decls {
                        vars.insert(d.name.as_str());
                    }
                }
                Section::Define(defs) => {
                    for (name, body) in defs {
                        defines.insert(name.as_str(), body);
                    }
                }
                _ => {}
            }
        }
        SupportMap { vars, defines, memo: std::cell::RefCell::new(HashMap::new()) }
    }

    /// Variables read by `e`, with `DEFINE` macros expanded.
    fn of_expr(&self, e: &Expr) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut expanding = HashSet::new();
        self.collect(e, &mut out, &mut expanding);
        out
    }

    /// Union of the support of every leaf of a `SPEC`.
    fn of_spec(&self, spec: &Spec) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut expanding = HashSet::new();
        for leaf in spec.leaves() {
            self.collect(leaf, &mut out, &mut expanding);
        }
        out
    }

    fn collect(&self, e: &Expr, out: &mut BTreeSet<String>, expanding: &mut HashSet<String>) {
        match e {
            Expr::Ident(name) | Expr::Next(name) => {
                if self.vars.contains(name.as_str()) {
                    out.insert(name.clone());
                } else if let Some(body) = self.defines.get(name.as_str()) {
                    if let Some(memoized) = self.memo.borrow().get(name.as_str()) {
                        out.extend(memoized.iter().cloned());
                        return;
                    }
                    if expanding.insert(name.clone()) {
                        let mut inner = BTreeSet::new();
                        self.collect(body, &mut inner, expanding);
                        expanding.remove(name.as_str());
                        out.extend(inner.iter().cloned());
                        self.memo.borrow_mut().insert(name.clone(), inner);
                    }
                }
                // Enum symbols and unknown names carry no support.
            }
            _ => {
                for child in children(e) {
                    self.collect(child, out, expanding);
                }
            }
        }
    }
}

/// Variables provably frozen at a single value on every execution.
///
/// A candidate has exactly one `init` and one `next` assignment and is
/// not mentioned by any raw `INIT`/`TRANS` constraint (relational
/// constraints could move it behind the assignments' back). The
/// fixpoint seeds every candidate with the literal value of its `init`
/// RHS (evaluated assuming the other surviving candidates are frozen
/// too) and demotes any candidate whose `next` RHS can differ from that
/// value; demotion restarts the evaluation, so the result is the
/// greatest self-consistent set.
pub fn frozen_constants(module: &Module) -> BTreeMap<String, ConstVal> {
    let support = SupportMap::new(module);
    let mut enum_syms: HashSet<&str> = HashSet::new();
    let mut declared: HashSet<&str> = HashSet::new();
    for section in &module.sections {
        if let Section::Var(decls) = section {
            for d in decls {
                declared.insert(d.name.as_str());
                if let VarType::Enum(syms) = &d.ty {
                    enum_syms.extend(syms.iter().map(String::as_str));
                }
            }
        }
    }

    // Collect the unique init/next assignment per variable; duplicates
    // (a compile error anyway) disqualify the variable.
    let mut inits: HashMap<&str, &Assign> = HashMap::new();
    let mut nexts: HashMap<&str, &Assign> = HashMap::new();
    let mut duplicated: HashSet<&str> = HashSet::new();
    for section in &module.sections {
        if let Section::Assign(assigns) = section {
            for a in assigns {
                let table = match a.kind {
                    AssignKind::Init => &mut inits,
                    AssignKind::Next => &mut nexts,
                };
                if table.insert(a.var.as_str(), a).is_some() {
                    duplicated.insert(a.var.as_str());
                }
            }
        }
    }
    let mut raw_mentioned: HashSet<&str> = HashSet::new();
    for section in &module.sections {
        if let Section::Init(e, _) | Section::Trans(e, _) = section {
            for v in support.of_expr(e) {
                if let Some(name) = declared.get(v.as_str()) {
                    raw_mentioned.insert(*name);
                }
            }
        }
    }

    let mut alive: BTreeSet<&str> = declared
        .iter()
        .copied()
        .filter(|v| {
            inits.contains_key(v)
                && nexts.contains_key(v)
                && !duplicated.contains(v)
                && !raw_mentioned.contains(v)
        })
        .collect();

    let eval_ctx = EvalCtx { defines: &support.defines, enum_syms: &enum_syms };
    loop {
        // Seed: initial values, fixpointed over the alive set (an init
        // RHS may read another frozen candidate).
        let mut env: BTreeMap<String, ConstVal> = BTreeMap::new();
        loop {
            let mut grew = false;
            for v in &alive {
                if !env.contains_key(*v) {
                    if let Some(c) = eval_ctx.eval(&inits[v].rhs, &env, 0) {
                        env.insert((*v).to_string(), c);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // Verify: the next-state value must equal the frozen value.
        let mut demoted = false;
        for v in alive.clone() {
            let holds = match env.get(v) {
                Some(c) => eval_ctx.eval(&nexts[v].rhs, &env, 0).as_ref() == Some(c),
                None => false,
            };
            if !holds {
                alive.remove(v);
                demoted = true;
            }
        }
        if !demoted {
            env.retain(|v, _| alive.contains(v.as_str()));
            return env;
        }
    }
}

/// Abstract constant evaluation: `Some` only when the expression has
/// exactly one possible value under `env`.
struct EvalCtx<'m> {
    defines: &'m HashMap<&'m str, &'m Expr>,
    enum_syms: &'m HashSet<&'m str>,
}

impl EvalCtx<'_> {
    fn eval(&self, e: &Expr, env: &BTreeMap<String, ConstVal>, depth: usize) -> Option<ConstVal> {
        if depth > 64 {
            return None;
        }
        let b = |v: bool| Some(ConstVal::Bool(v));
        match e {
            Expr::Bool(v) => b(*v),
            Expr::Int(k) => Some(ConstVal::Int(*k)),
            Expr::Ident(name) => {
                if let Some(c) = env.get(name) {
                    Some(c.clone())
                } else if let Some(body) = self.defines.get(name.as_str()) {
                    self.eval(body, env, depth + 1)
                } else if self.enum_syms.contains(name.as_str()) {
                    Some(ConstVal::Sym(name.clone()))
                } else {
                    None
                }
            }
            // A frozen variable holds its value at every time, so
            // `next(v)` evaluates like `v`.
            Expr::Next(name) => env.get(name).cloned(),
            Expr::Not(a) => match self.eval(a, env, depth + 1)? {
                ConstVal::Bool(v) => b(!v),
                _ => None,
            },
            Expr::And(x, y) => self.bool2(x, y, env, depth, |a, b| match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }),
            Expr::Or(x, y) => self.bool2(x, y, env, depth, |a, b| match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }),
            Expr::Implies(x, y) => self.bool2(x, y, env, depth, |a, b| match (a, b) {
                (Some(false), _) | (_, Some(true)) => Some(true),
                (Some(true), Some(false)) => Some(false),
                _ => None,
            }),
            Expr::Iff(x, y) => self.bool2(x, y, env, depth, |a, b| Some(a? == b?)),
            Expr::Eq(x, y) => self.compare(x, y, env, depth, false),
            Expr::Neq(x, y) => self.compare(x, y, env, depth, true),
            Expr::Lt(x, y) => self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Bool(a < c)),
            Expr::Le(x, y) => self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Bool(a <= c)),
            Expr::Gt(x, y) => self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Bool(a > c)),
            Expr::Ge(x, y) => self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Bool(a >= c)),
            Expr::Add(x, y) => {
                self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Int(a.wrapping_add(c)))
            }
            Expr::Sub(x, y) => {
                self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Int(a.wrapping_sub(c)))
            }
            Expr::Mul(x, y) => {
                self.ints(x, y, env, depth).map(|(a, c)| ConstVal::Int(a.wrapping_mul(c)))
            }
            Expr::Mod(x, y) => match self.ints(x, y, env, depth) {
                Some((a, c)) if c != 0 => Some(ConstVal::Int(a.rem_euclid(c))),
                _ => None,
            },
            Expr::Case(branches) => self.eval_case(branches, env, depth),
            Expr::Set(elems) => {
                let mut value: Option<ConstVal> = None;
                for e in elems {
                    let c = self.eval(e, env, depth + 1)?;
                    match &value {
                        None => value = Some(c),
                        Some(prev) if *prev == c => {}
                        Some(_) => return None,
                    }
                }
                value
            }
        }
    }

    /// A binary boolean connective with three-valued short-circuiting.
    fn bool2(
        &self,
        x: &Expr,
        y: &Expr,
        env: &BTreeMap<String, ConstVal>,
        depth: usize,
        f: impl Fn(Option<bool>, Option<bool>) -> Option<bool>,
    ) -> Option<ConstVal> {
        let as_bool = |e: &Expr| match self.eval(e, env, depth + 1) {
            Some(ConstVal::Bool(v)) => Some(v),
            _ => None,
        };
        f(as_bool(x), as_bool(y)).map(ConstVal::Bool)
    }

    /// `=` / `!=` over same-kind constants; cross-kind stays unknown.
    fn compare(
        &self,
        x: &Expr,
        y: &Expr,
        env: &BTreeMap<String, ConstVal>,
        depth: usize,
        negate: bool,
    ) -> Option<ConstVal> {
        let a = self.eval(x, env, depth + 1)?;
        let c = self.eval(y, env, depth + 1)?;
        let same = match (&a, &c) {
            (ConstVal::Bool(p), ConstVal::Bool(q)) => p == q,
            (ConstVal::Int(p), ConstVal::Int(q)) => p == q,
            (ConstVal::Sym(p), ConstVal::Sym(q)) => p == q,
            _ => return None,
        };
        Some(ConstVal::Bool(same != negate))
    }

    fn ints(
        &self,
        x: &Expr,
        y: &Expr,
        env: &BTreeMap<String, ConstVal>,
        depth: usize,
    ) -> Option<(i64, i64)> {
        match (self.eval(x, env, depth + 1)?, self.eval(y, env, depth + 1)?) {
            (ConstVal::Int(a), ConstVal::Int(c)) => Some((a, c)),
            _ => None,
        }
    }

    /// The value of a `case` when it is unique: branches with a
    /// definitely-FALSE guard are skipped, a definitely-TRUE guard cuts
    /// the rest off, and every branch that *might* fire must evaluate to
    /// the same constant (the compiler's exhaustiveness check guarantees
    /// some branch fires).
    fn eval_case(
        &self,
        branches: &[CaseBranch],
        env: &BTreeMap<String, ConstVal>,
        depth: usize,
    ) -> Option<ConstVal> {
        let mut value: Option<ConstVal> = None;
        for branch in branches {
            let guard = match self.eval(&branch.condition, env, depth + 1) {
                Some(ConstVal::Bool(g)) => Some(g),
                _ => None,
            };
            if guard == Some(false) {
                continue;
            }
            let v = self.eval(&branch.value, env, depth + 1)?;
            match &value {
                None => value = Some(v),
                Some(prev) if *prev == v => {}
                Some(_) => return None,
            }
            if guard == Some(true) {
                break;
            }
        }
        value
    }
}

/// All direct subexpressions, for generic traversal.
fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Bool(_) | Expr::Int(_) | Expr::Ident(_) | Expr::Next(_) => Vec::new(),
        Expr::Not(a) => vec![a],
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Implies(a, b)
        | Expr::Iff(a, b)
        | Expr::Eq(a, b)
        | Expr::Neq(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Mod(a, b) => vec![a, b],
        Expr::Case(branches) => {
            let mut out = Vec::with_capacity(branches.len() * 2);
            for CaseBranch { condition, value, .. } in branches {
                out.push(condition);
                out.push(value);
            }
            out
        }
        Expr::Set(elems) => elems.iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        smc_smv::flatten(&smc_smv::parse(src).expect("parse")).expect("flatten")
    }

    #[test]
    fn assignment_reads_become_edges_through_defines() {
        let m = module(
            "MODULE main\n\
             VAR a : boolean;\nVAR b : boolean;\nVAR c : boolean;\n\
             DEFINE both := a & b;\n\
             ASSIGN next(c) := both; next(a) := !a; next(b) := c;\n\
             SPEC EF c\n",
        );
        let g = DepGraph::build(&m);
        assert_eq!(g.vars, vec!["a", "b", "c"]);
        assert_eq!(g.deps["c"], ["a", "b"].iter().map(|s| s.to_string()).collect());
        assert_eq!(g.deps["a"], ["a"].iter().map(|s| s.to_string()).collect());
        assert_eq!(g.spec_support, vec![["c"].iter().map(|s| s.to_string()).collect()]);
    }

    #[test]
    fn raw_constraints_couple_their_whole_support() {
        let m = module(
            "MODULE main\n\
             VAR a : boolean;\nVAR b : boolean;\nVAR c : boolean;\n\
             ASSIGN next(c) := c;\n\
             TRANS next(a) = b\n\
             SPEC EF a\n",
        );
        let g = DepGraph::build(&m);
        let ab: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(g.deps["a"], ab);
        assert_eq!(g.deps["b"], ab);
        assert_eq!(g.constraint_support, vec![ab.clone()]);
        // The cone of a pulls in b via the coupling, but not c.
        assert_eq!(g.cone(&["a".to_string()]), ab);
    }

    #[test]
    fn sccs_condense_mutual_dependencies() {
        let m = module(
            "MODULE main\n\
             VAR a : boolean;\nVAR b : boolean;\nVAR c : boolean;\n\
             ASSIGN next(a) := b; next(b) := a; next(c) := a;\n\
             SPEC EF c\n",
        );
        let g = DepGraph::build(&m);
        let sccs = g.sccs();
        assert!(sccs.contains(&vec!["a".to_string(), "b".to_string()]), "{sccs:?}");
        assert!(sccs.contains(&vec!["c".to_string()]), "{sccs:?}");
        // a/b is a callee of c, so it condenses first.
        assert!(sccs[0].len() == 2, "reverse topological order: {sccs:?}");
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let m = module(
            "MODULE main\nVAR a : boolean;\nVAR b : boolean;\n\
             ASSIGN next(a) := b; next(b) := b;\nSPEC EF a\n",
        );
        let dot = DepGraph::build(&m).to_dot();
        assert!(dot.starts_with("digraph deps {"), "{dot}");
        assert!(dot.contains("\"a\" -> \"b\";"), "{dot}");
        assert!(!dot.contains("\"b\" -> \"b\";"), "self loops omitted: {dot}");
    }

    #[test]
    fn frozen_constants_survive_identity_updates() {
        let m = module(
            "MODULE main\n\
             VAR a : boolean;\nVAR c : 0..3;\nVAR free : boolean;\n\
             ASSIGN\n\
             init(a) := FALSE; next(a) := a | FALSE;\n\
             init(c) := 2; next(c) := case free : 2; TRUE : c; esac;\n\
             init(free) := FALSE; next(free) := {FALSE, TRUE};\n\
             SPEC EF free\n",
        );
        let consts = frozen_constants(&m);
        assert_eq!(consts.get("a"), Some(&ConstVal::Bool(false)));
        assert_eq!(consts.get("c"), Some(&ConstVal::Int(2)));
        assert_eq!(consts.get("free"), None, "a nondeterministic choice is not frozen");
    }

    #[test]
    fn freezing_is_mutually_recursive() {
        // gate copies itself unless req fires; req never fires, but only
        // the fixpoint over {req, gate} can see that.
        let m = module(
            "MODULE main\n\
             VAR req : boolean;\nVAR gate : boolean;\n\
             ASSIGN\n\
             init(req) := FALSE; next(req) := FALSE;\n\
             init(gate) := FALSE; next(gate) := case req : TRUE; TRUE : gate; esac;\n\
             SPEC EF gate\n",
        );
        let consts = frozen_constants(&m);
        assert_eq!(consts.get("req"), Some(&ConstVal::Bool(false)));
        assert_eq!(consts.get("gate"), Some(&ConstVal::Bool(false)));
    }

    #[test]
    fn raw_constraints_disqualify_their_variables() {
        let m = module(
            "MODULE main\nVAR a : boolean;\n\
             ASSIGN init(a) := FALSE; next(a) := FALSE;\n\
             TRANS a | !a\n\
             SPEC EF a\n",
        );
        assert!(frozen_constants(&m).is_empty(), "raw TRANS could move a behind our back");
    }

    #[test]
    fn toggling_variables_are_not_frozen() {
        let m = module(
            "MODULE main\nVAR x : boolean;\n\
             ASSIGN init(x) := FALSE; next(x) := !x;\nSPEC AG (AF x)\n",
        );
        assert!(frozen_constants(&m).is_empty());
    }
}
