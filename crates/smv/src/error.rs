//! Error type for the SMV frontend.

use std::error::Error;
use std::fmt;

use smc_kripke::KripkeError;

use crate::ast::Span;

/// Errors reported while parsing or compiling an SMV program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmvError {
    /// Lexical or syntactic error at a byte offset.
    Parse {
        /// Byte offset in the source.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Static-semantics error (unknown identifier, type mismatch, value
    /// outside a variable's domain, ...).
    Semantic {
        /// What went wrong.
        message: String,
        /// The construct the error arose in, when known.
        span: Option<Span>,
    },
    /// Error from the model layer (deadlock, empty initial set, ...).
    Kripke(KripkeError),
}

impl SmvError {
    pub(crate) fn parse(position: usize, message: impl Into<String>) -> SmvError {
        SmvError::Parse { position, message: message.into() }
    }

    pub(crate) fn semantic(message: impl Into<String>) -> SmvError {
        SmvError::Semantic { message: message.into(), span: None }
    }

    /// Attaches `span` to a [`SmvError::Semantic`] that does not already
    /// carry one. Parse and model-layer errors are returned unchanged.
    pub(crate) fn with_span(self, span: Span) -> SmvError {
        match self {
            SmvError::Semantic { message, span: None } => {
                SmvError::Semantic { message, span: Some(span) }
            }
            other => other,
        }
    }

    /// The source span the error points at, when one is known: parse
    /// errors carry their offending byte, semantic errors the enclosing
    /// construct; model-layer errors have no source location.
    pub fn span(&self) -> Option<Span> {
        match self {
            SmvError::Parse { position, .. } => Some(Span::point(*position)),
            SmvError::Semantic { span, .. } => *span,
            SmvError::Kripke(_) => None,
        }
    }
}

impl fmt::Display for SmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmvError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SmvError::Semantic { message, .. } => write!(f, "semantic error: {message}"),
            SmvError::Kripke(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SmvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmvError::Kripke(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KripkeError> for SmvError {
    fn from(e: KripkeError) -> SmvError {
        SmvError::Kripke(e)
    }
}
