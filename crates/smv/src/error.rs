//! Error type for the SMV frontend.

use std::error::Error;
use std::fmt;

use smc_kripke::KripkeError;

/// Errors reported while parsing or compiling an SMV program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmvError {
    /// Lexical or syntactic error at a byte offset.
    Parse {
        /// Byte offset in the source.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Static-semantics error (unknown identifier, type mismatch, value
    /// outside a variable's domain, ...).
    Semantic(String),
    /// Error from the model layer (deadlock, empty initial set, ...).
    Kripke(KripkeError),
}

impl SmvError {
    pub(crate) fn parse(position: usize, message: impl Into<String>) -> SmvError {
        SmvError::Parse { position, message: message.into() }
    }

    pub(crate) fn semantic(message: impl Into<String>) -> SmvError {
        SmvError::Semantic(message.into())
    }
}

impl fmt::Display for SmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmvError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SmvError::Semantic(message) => write!(f, "semantic error: {message}"),
            SmvError::Kripke(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SmvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmvError::Kripke(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KripkeError> for SmvError {
    fn from(e: KripkeError) -> SmvError {
        SmvError::Kripke(e)
    }
}
