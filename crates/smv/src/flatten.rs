//! Module flattening: expanding `VAR inst : module(args);` instances
//! into the parent, with `inst.`-prefixed names and parameters bound to
//! (parent-scope) expressions.

use std::collections::{HashMap, HashSet};

use crate::ast::{Assign, CaseBranch, Decl, Expr, Module, Program, Section, Spec, VarType};
use crate::error::SmvError;

/// Flattens a multi-module program into a single parameterless module
/// equivalent to `main`.
///
/// # Errors
///
/// [`SmvError::Semantic`] when `main` is missing or parameterized, an
/// instantiated module is unknown, argument counts mismatch, the
/// instantiation graph is cyclic, or `next(…)` is applied to a
/// non-variable parameter.
pub fn flatten(program: &Program) -> Result<Module, SmvError> {
    let main = program.main().ok_or_else(|| SmvError::semantic("no MODULE main"))?;
    if !main.params.is_empty() {
        return Err(SmvError::semantic("MODULE main cannot take parameters"));
    }
    let mut sections = Vec::new();
    let mut visiting = vec!["main".to_string()];
    expand(program, main, "", &HashMap::new(), &mut sections, &mut visiting)?;
    Ok(Module { name: "main".to_string(), params: Vec::new(), sections })
}

fn expand(
    program: &Program,
    module: &Module,
    prefix: &str,
    bindings: &HashMap<String, Expr>,
    out: &mut Vec<Section>,
    visiting: &mut Vec<String>,
) -> Result<(), SmvError> {
    // Names declared in this module (variables, instances, macros):
    // these get prefixed; everything else is a parameter or an
    // enumeration literal.
    let mut locals: HashSet<String> = HashSet::new();
    for section in &module.sections {
        match section {
            Section::Var(decls) => {
                for d in decls {
                    locals.insert(d.name.clone());
                }
            }
            Section::Define(defs) => {
                for (name, _) in defs {
                    locals.insert(name.clone());
                }
            }
            _ => {}
        }
    }
    let ctx = Renamer { prefix, locals: &locals, bindings };

    for section in &module.sections {
        match section {
            Section::Var(decls) => {
                let mut plain = Vec::new();
                for d in decls {
                    match &d.ty {
                        VarType::Instance(mname, args) => {
                            if !plain.is_empty() {
                                out.push(Section::Var(std::mem::take(&mut plain)));
                            }
                            let sub = program.module(mname).ok_or_else(|| {
                                SmvError::semantic(format!("unknown module {mname:?}"))
                            })?;
                            if visiting.contains(mname) {
                                return Err(SmvError::semantic(format!(
                                    "recursive instantiation of module {mname:?}"
                                )));
                            }
                            if args.len() != sub.params.len() {
                                return Err(SmvError::semantic(format!(
                                    "module {mname:?} takes {} parameter(s), got {}",
                                    sub.params.len(),
                                    args.len()
                                )));
                            }
                            // Arguments are expressions in the *current*
                            // scope: rename them here, then bind.
                            let mut sub_bindings = HashMap::new();
                            for (p, a) in sub.params.iter().zip(args) {
                                sub_bindings.insert(p.clone(), ctx.expr(a)?);
                            }
                            let sub_prefix = format!("{prefix}{}.", d.name);
                            visiting.push(mname.clone());
                            expand(program, sub, &sub_prefix, &sub_bindings, out, visiting)?;
                            visiting.pop();
                        }
                        other => {
                            plain.push(Decl {
                                name: format!("{prefix}{}", d.name),
                                ty: other.clone(),
                                span: d.span,
                            });
                        }
                    }
                }
                if !plain.is_empty() {
                    out.push(Section::Var(plain));
                }
            }
            Section::Assign(assigns) => {
                let mut renamed = Vec::with_capacity(assigns.len());
                for a in assigns {
                    renamed.push(Assign {
                        var: ctx.name(&a.var),
                        kind: a.kind,
                        rhs: ctx.expr(&a.rhs)?,
                        span: a.span,
                    });
                }
                out.push(Section::Assign(renamed));
            }
            Section::Define(defs) => {
                let mut renamed = Vec::with_capacity(defs.len());
                for (name, e) in defs {
                    renamed.push((format!("{prefix}{name}"), ctx.expr(e)?));
                }
                out.push(Section::Define(renamed));
            }
            Section::Init(e, span) => out.push(Section::Init(ctx.expr(e)?, *span)),
            Section::Trans(e, span) => out.push(Section::Trans(ctx.expr(e)?, *span)),
            Section::Fairness(e, span) => out.push(Section::Fairness(ctx.expr(e)?, *span)),
            Section::Spec(s, span) => out.push(Section::Spec(ctx.spec(s)?, *span)),
        }
    }
    Ok(())
}

struct Renamer<'a> {
    prefix: &'a str,
    locals: &'a HashSet<String>,
    bindings: &'a HashMap<String, Expr>,
}

impl Renamer<'_> {
    /// Renames a bare name (assignment targets, dotted heads).
    fn name(&self, name: &str) -> String {
        let head = name.split('.').next().unwrap_or(name);
        if self.locals.contains(head) {
            format!("{}{}", self.prefix, name)
        } else {
            name.to_string()
        }
    }

    fn expr(&self, e: &Expr) -> Result<Expr, SmvError> {
        Ok(match e {
            Expr::Bool(_) | Expr::Int(_) => e.clone(),
            Expr::Ident(name) => {
                if let Some(bound) = self.bindings.get(name) {
                    bound.clone()
                } else {
                    Expr::Ident(self.name(name))
                }
            }
            Expr::Next(name) => {
                if let Some(bound) = self.bindings.get(name) {
                    match bound {
                        Expr::Ident(n) => Expr::Next(n.clone()),
                        other => {
                            return Err(SmvError::semantic(format!(
                                "next({name}) where {name} is bound to the \
                                 non-variable expression {other:?}"
                            )));
                        }
                    }
                } else {
                    Expr::Next(self.name(name))
                }
            }
            Expr::Not(a) => Expr::Not(Box::new(self.expr(a)?)),
            Expr::And(a, b) => Expr::And(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Implies(a, b) => Expr::Implies(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Iff(a, b) => Expr::Iff(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Eq(a, b) => Expr::Eq(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Neq(a, b) => Expr::Neq(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Lt(a, b) => Expr::Lt(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Le(a, b) => Expr::Le(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Gt(a, b) => Expr::Gt(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Ge(a, b) => Expr::Ge(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Add(a, b) => Expr::Add(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Sub(a, b) => Expr::Sub(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Mul(a, b) => Expr::Mul(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Mod(a, b) => Expr::Mod(Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Case(branches) => Expr::Case(
                branches
                    .iter()
                    .map(|b| {
                        Ok(CaseBranch {
                            condition: self.expr(&b.condition)?,
                            value: self.expr(&b.value)?,
                            span: b.span,
                        })
                    })
                    .collect::<Result<_, SmvError>>()?,
            ),
            Expr::Set(elements) => {
                Expr::Set(elements.iter().map(|e| self.expr(e)).collect::<Result<_, SmvError>>()?)
            }
        })
    }

    fn spec(&self, s: &Spec) -> Result<Spec, SmvError> {
        Ok(match s {
            Spec::Expr(e) => Spec::Expr(self.expr(e)?),
            Spec::Not(a) => Spec::Not(Box::new(self.spec(a)?)),
            Spec::And(a, b) => Spec::And(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
            Spec::Or(a, b) => Spec::Or(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
            Spec::Implies(a, b) => Spec::Implies(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
            Spec::Iff(a, b) => Spec::Iff(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
            Spec::Ex(a) => Spec::Ex(Box::new(self.spec(a)?)),
            Spec::Ef(a) => Spec::Ef(Box::new(self.spec(a)?)),
            Spec::Eg(a) => Spec::Eg(Box::new(self.spec(a)?)),
            Spec::Eu(a, b) => Spec::Eu(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
            Spec::Ax(a) => Spec::Ax(Box::new(self.spec(a)?)),
            Spec::Af(a) => Spec::Af(Box::new(self.spec(a)?)),
            Spec::Ag(a) => Spec::Ag(Box::new(self.spec(a)?)),
            Spec::Au(a, b) => Spec::Au(Box::new(self.spec(a)?), Box::new(self.spec(b)?)),
        })
    }
}
