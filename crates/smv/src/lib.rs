#![warn(missing_docs)]

//! # smc-smv — an SMV-like modeling language
//!
//! A frontend in the spirit of the SMV system the paper's algorithms
//! were built into: finite-state models are described with variable
//! declarations, functional `ASSIGN`s, raw `INIT`/`TRANS` constraints,
//! `FAIRNESS` constraints and CTL `SPEC`s, then compiled to the symbolic
//! Kripke structures of [`smc_kripke`].
//!
//! Programs may define multiple parameterized modules; instances
//! (`VAR c : cell(arg);`) are flattened into `main` with dotted names
//! (`c.n`) and arguments bound by expression substitution, exactly like
//! SMV. Supported syntax:
//!
//! ```text
//! MODULE counter(inc)
//! VAR n : 0..7;
//! ASSIGN next(n) := case inc : (n + 1) mod 8; TRUE : n; esac;
//!
//! MODULE main
//! VAR
//!   x     : boolean;
//!   state : {idle, busy, done};
//!   count : 0..7;
//!   sub   : counter(x);
//! ASSIGN
//!   init(x)     := FALSE;
//!   next(x)     := !x;
//!   init(state) := idle;
//!   next(state) := case
//!       state = idle & x  : busy;
//!       state = busy      : {busy, done};
//!       TRUE              : idle;
//!     esac;
//! TRANS next(count) = (count + 1) mod 8
//! FAIRNESS state = done
//! SPEC AG (state = busy -> AF state = done)
//! ```
//!
//! Expressions support the boolean connectives, comparisons
//! (`= != < <= > >=`), integer arithmetic (`+ - * mod`), `case … esac`,
//! nondeterministic choice sets `{a, b}`, and `next(…)` inside `TRANS`.
//!
//! ## Example
//!
//! ```
//! use smc_smv::compile;
//! use smc_checker::Checker;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!   MODULE main
//!   VAR x : boolean;
//!   ASSIGN
//!     init(x) := FALSE;
//!     next(x) := !x;
//!   SPEC AG (AF x)
//! "#;
//! let mut compiled = compile(src)?;
//! let spec = compiled.specs[0].formula.clone();
//! let mut checker = Checker::new(&mut compiled.model);
//! assert!(checker.check(&spec)?.holds());
//! # Ok(())
//! # }
//! ```

mod ast;
mod compile;
mod error;
mod flatten;
mod lexer;
mod parser;
mod slice;
mod value;

pub use ast::{
    Assign, AssignKind, CaseBranch, Decl, Expr, Module, Program, Section, Span, Spec, VarType,
};
pub use compile::{
    compile, compile_budgeted, compile_module, compile_module_with_options, compile_program,
    compile_with, compile_with_options, AssignBranch, CompileOptions, CompiledModel, CompiledSpec,
};
pub use error::SmvError;
pub use flatten::flatten;
pub use parser::parse;
pub use slice::slice_module;
pub use value::Value;

#[cfg(test)]
mod tests;

/// Compile-time `Send` assertion: compiled models (and the flattened
/// modules the warm-start cache shares between jobs) cross thread
/// boundaries in the parallel engine.
#[allow(dead_code)]
mod send_assertions {
    fn assert_send<T: Send>() {}

    fn session_types_are_send() {
        assert_send::<crate::CompiledModel>();
        assert_send::<crate::Module>();
        assert_send::<crate::Program>();
    }

    fn shared_artifacts_are_sync() {
        // The cache hands out `Arc<Module>` clones to concurrent jobs.
        fn assert_sync<T: Sync>() {}
        assert_sync::<crate::Module>();
    }
}
