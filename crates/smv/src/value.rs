//! Runtime values of SMV expressions.

use std::fmt;

/// A value of the finite SMV value universe: booleans, bounded integers
/// and enumeration symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// A bounded integer.
    Int(i64),
    /// An enumeration symbol.
    Sym(String),
}

impl Value {
    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Sym(_) => "symbol",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(true) => write!(f, "TRUE"),
            Value::Bool(false) => write!(f, "FALSE"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}
