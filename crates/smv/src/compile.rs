//! Compiling SMV programs to symbolic Kripke structures.

use std::collections::HashMap;

use smc_bdd::{Bdd, BddManager, Budget, Var};
use smc_kripke::{State, SymbolicModel};
use smc_logic::Ctl;
use smc_obs::{SpanId, SpanKind, StatsSnapshot, Telemetry};

use crate::ast::{Assign, AssignKind, Expr, Module, Program, Section, Span, Spec};
use crate::error::SmvError;
use crate::flatten::flatten;
use crate::value::Value;

/// A compiled specification: the original AST and the [`Ctl`] formula
/// whose atoms are labels registered in the model.
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    /// The source text's AST.
    pub source: Spec,
    /// The checkable formula.
    pub formula: Ctl,
    /// Source span of the `SPEC` section.
    pub span: Span,
}

/// Tuning knobs for [`compile_with_options`]. The defaults reproduce
/// [`compile_with`]; the analysis layer relaxes them so that it can
/// diagnose models the strict loader would reject outright.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Skip the load-time totality check, so deadlocked models compile
    /// and the analyzer can report the stuck state as a diagnostic.
    pub allow_deadlock: bool,
    /// Record the guard of every top-level `case` branch on an `ASSIGN`
    /// right-hand side (see [`AssignBranch`]), for symbolic dead-code
    /// analysis. Off by default: the guards are protected BDDs that stay
    /// live for the model's lifetime.
    pub record_branches: bool,
}

/// One top-level `case` branch of an `ASSIGN` right-hand side, with the
/// guard under which the branch — and no earlier branch — applies.
/// Recorded only under [`CompileOptions::record_branches`]; the guard is
/// protected in the model's manager so GC cannot reclaim it.
#[derive(Debug, Clone)]
pub struct AssignBranch {
    /// The assigned (flattened) variable name.
    pub var: String,
    /// Whether the branch belongs to an `init(…)` or `next(…)` assign.
    pub kind: AssignKind,
    /// 0-based index of the branch within its `case`.
    pub index: usize,
    /// Source span of the branch (`condition : value;`).
    pub span: Span,
    /// `condition ∧ ¬(earlier conditions)`, over current-state
    /// variables.
    pub taken: Bdd,
    /// The guard is a literal `TRUE` — a defensive catch-all default,
    /// which dead-branch analysis leaves alone (being unreached is its
    /// job in a correct model).
    pub default: bool,
}

/// Per-variable layout and domain information.
#[derive(Debug, Clone)]
struct VarInfo {
    name: String,
    domain: Vec<Value>,
    /// Index of the first state bit in declaration order.
    first_bit: usize,
    nbits: usize,
}

/// The result of compiling a program: the symbolic model plus the
/// compiled `SPEC`s and the value decoding tables.
#[derive(Debug)]
pub struct CompiledModel {
    /// The symbolic Kripke structure (fairness constraints included).
    pub model: SymbolicModel,
    /// The compiled specifications, in source order.
    pub specs: Vec<CompiledSpec>,
    /// Source spans of the `FAIRNESS` sections, index-aligned with
    /// [`SymbolicModel::fairness`](smc_kripke::SymbolicModel::fairness).
    pub fairness_spans: Vec<Span>,
    /// Top-level `ASSIGN` case-branch guards; empty unless compiled
    /// under [`CompileOptions::record_branches`].
    pub branches: Vec<AssignBranch>,
    vars: Vec<VarInfo>,
}

impl CompiledModel {
    /// Decodes one variable's value in a concrete state.
    pub fn value_of(&self, state: &State, var: &str) -> Option<Value> {
        let info = self.vars.iter().find(|v| v.name == var)?;
        let mut index = 0usize;
        for b in 0..info.nbits {
            if state.bit(info.first_bit + b) {
                index |= 1 << b;
            }
        }
        info.domain.get(index).cloned()
    }

    /// Renders a state as `name=value` pairs with decoded enum/range
    /// values (unlike the bit-level rendering of the raw model).
    pub fn render_state(&self, state: &State) -> String {
        self.vars
            .iter()
            .map(|v| {
                let value = self
                    .value_of(state, &v.name)
                    .map_or_else(|| "?".to_string(), |v| v.to_string());
                format!("{}={}", v.name, value)
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The declared variable names, in order.
    pub fn var_names(&self) -> Vec<&str> {
        self.vars.iter().map(|v| v.name.as_str()).collect()
    }
}

/// Parses and compiles an SMV program.
///
/// # Errors
///
/// [`SmvError::Parse`] for syntax errors, [`SmvError::Semantic`] for
/// unknown identifiers / type errors / non-exhaustive `case`s / values
/// outside a variable's domain, [`SmvError::Kripke`] if the resulting
/// model is degenerate (empty initial set, deadlock).
pub fn compile(source: &str) -> Result<CompiledModel, SmvError> {
    let program = crate::parser::parse(source)?;
    compile_program(&program)
}

/// As [`compile`], but installs `budget` on the model's BDD manager
/// *before* the compile-time totality check, so even the load-time
/// reachability fixpoint runs governed. A budget trip surfaces as
/// [`SmvError::Kripke`] wrapping
/// [`BddError::ResourceExhausted`](smc_bdd::BddError::ResourceExhausted);
/// the budget stays installed for subsequent checking on the model.
pub fn compile_budgeted(source: &str, budget: Budget) -> Result<CompiledModel, SmvError> {
    compile_with(source, Some(budget), Telemetry::disabled())
}

/// The fully-instrumented entry point: as [`compile_budgeted`] (budget
/// optional), with a telemetry handle installed on the model's BDD
/// manager before any compilation work. The whole parse + compile +
/// totality check runs under a `compile` span, and every later phase
/// (reachability, fixpoints, witnesses) reaches the same handle through
/// the manager.
///
/// # Errors
///
/// As [`compile`] / [`compile_budgeted`].
pub fn compile_with(
    source: &str,
    budget: Option<Budget>,
    tele: Telemetry,
) -> Result<CompiledModel, SmvError> {
    compile_with_options(source, budget, tele, CompileOptions::default())
}

/// As [`compile_with`], with explicit [`CompileOptions`]. This is the
/// analysis layer's entry point: it compiles deadlocked models without
/// rejecting them and records `case`-branch guards for symbolic
/// dead-code detection.
///
/// # Errors
///
/// As [`compile`] / [`compile_budgeted`], minus the deadlock rejection
/// when [`CompileOptions::allow_deadlock`] is set.
pub fn compile_with_options(
    source: &str,
    budget: Option<Budget>,
    tele: Telemetry,
    opts: CompileOptions,
) -> Result<CompiledModel, SmvError> {
    let span = if tele.enabled() {
        // No manager exists yet; the span opens on an empty snapshot so
        // its delta covers every node the compile creates.
        tele.span_start(SpanKind::Compile, None, StatsSnapshot::default())
    } else {
        SpanId::NONE
    };
    let result = (|| {
        let program = crate::parser::parse(source)?;
        let flat = flatten(&program)?;
        compile_module_full(&flat, budget, tele.clone(), opts)
    })();
    if tele.enabled() {
        let at = match &result {
            Ok(compiled) => compiled.model.manager().stats_snapshot(),
            Err(_) => StatsSnapshot::default(),
        };
        tele.span_end(span, at);
    }
    result
}

/// Compiles an already-parsed program: flattens the module hierarchy
/// into `main`, then compiles; see [`compile`].
pub fn compile_program(program: &Program) -> Result<CompiledModel, SmvError> {
    let flat = flatten(program)?;
    compile_module(&flat)
}

/// Compiles a single flattened (instance-free) module.
pub fn compile_module(program: &Module) -> Result<CompiledModel, SmvError> {
    compile_module_full(program, None, Telemetry::disabled(), CompileOptions::default())
}

/// Compiles a single flattened (instance-free) module with explicit
/// [`CompileOptions`], budget and telemetry; see [`compile_with_options`].
///
/// # Errors
///
/// As [`compile_module`].
pub fn compile_module_with_options(
    program: &Module,
    budget: Option<Budget>,
    tele: Telemetry,
    opts: CompileOptions,
) -> Result<CompiledModel, SmvError> {
    compile_module_full(program, budget, tele, opts)
}

fn compile_module_full(
    program: &Module,
    budget: Option<Budget>,
    tele: Telemetry,
    opts: CompileOptions,
) -> Result<CompiledModel, SmvError> {
    // ---- Collect declarations. ----
    let mut vars: Vec<VarInfo> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut defines: HashMap<String, Expr> = HashMap::new();
    let mut enum_symbols: HashMap<String, ()> = HashMap::new();
    let mut bit_count = 0usize;
    for section in &program.sections {
        match section {
            Section::Var(decls) => {
                for d in decls {
                    if var_index.contains_key(&d.name) {
                        return Err(SmvError::semantic(format!(
                            "variable {:?} declared twice",
                            d.name
                        ))
                        .with_span(d.span));
                    }
                    let domain: Vec<Value> = match &d.ty {
                        crate::ast::VarType::Boolean => {
                            vec![Value::Bool(false), Value::Bool(true)]
                        }
                        crate::ast::VarType::Enum(symbols) => {
                            for s in symbols {
                                enum_symbols.insert(s.clone(), ());
                            }
                            symbols.iter().map(|s| Value::Sym(s.clone())).collect()
                        }
                        crate::ast::VarType::Range(lo, hi) => (*lo..=*hi).map(Value::Int).collect(),
                        crate::ast::VarType::Instance(m, _) => {
                            return Err(SmvError::semantic(format!(
                                "unflattened instance of module {m:?} (use compile_program)"
                            )));
                        }
                    };
                    let nbits = bits_for(domain.len());
                    var_index.insert(d.name.clone(), vars.len());
                    vars.push(VarInfo {
                        name: d.name.clone(),
                        domain,
                        first_bit: bit_count,
                        nbits,
                    });
                    bit_count += nbits;
                }
            }
            Section::Define(ds) => {
                for (name, expr) in ds {
                    if defines.insert(name.clone(), expr.clone()).is_some() {
                        return Err(SmvError::semantic(format!("macro {name:?} defined twice")));
                    }
                }
            }
            _ => {}
        }
    }
    if vars.is_empty() {
        return Err(SmvError::semantic("program declares no variables"));
    }
    for name in var_index.keys() {
        if defines.contains_key(name) {
            return Err(SmvError::semantic(format!("{name:?} is both a variable and a macro")));
        }
    }

    // ---- Allocate interleaved BDD variables. ----
    let mut manager = BddManager::new();
    manager.set_telemetry(tele);
    let mut names: Vec<String> = Vec::with_capacity(bit_count);
    let mut cur: Vec<Var> = Vec::with_capacity(bit_count);
    let mut nxt: Vec<Var> = Vec::with_capacity(bit_count);
    for info in &vars {
        for b in 0..info.nbits {
            let bit_name =
                if info.nbits == 1 { info.name.clone() } else { format!("{}.{}", info.name, b) };
            cur.push(
                manager.new_var(&bit_name).map_err(|e| {
                    SmvError::semantic(format!("bdd variable allocation failed: {e}"))
                })?,
            );
            nxt.push(
                manager.new_var(&format!("{bit_name}'")).map_err(|e| {
                    SmvError::semantic(format!("bdd variable allocation failed: {e}"))
                })?,
            );
            names.push(bit_name);
        }
    }

    let mut ctx = Ctx {
        manager,
        vars: &vars,
        var_index: &var_index,
        defines: &defines,
        cur,
        nxt,
        valid: Bdd::TRUE,
    };

    // ---- Domain-validity constraints. ----
    let mut valid_cur = Bdd::TRUE;
    let mut valid_nxt = Bdd::TRUE;
    for i in 0..vars.len() {
        let vc = ctx.valid_encoding(i, Rail::Cur);
        let vn = ctx.valid_encoding(i, Rail::Nxt);
        valid_cur = ctx.manager.and(valid_cur, vc);
        valid_nxt = ctx.manager.and(valid_nxt, vn);
    }
    ctx.valid = ctx.manager.and(valid_cur, valid_nxt);

    // ---- Sections. ----
    let mut init = valid_cur;
    let mut trans = valid_nxt;
    let mut fairness: Vec<Bdd> = Vec::new();
    let mut fairness_spans: Vec<Span> = Vec::new();
    let mut spec_asts: Vec<(Spec, Span)> = Vec::new();
    let mut branches: Vec<AssignBranch> = Vec::new();
    let mut assigned_init: HashMap<String, ()> = HashMap::new();
    let mut assigned_next: HashMap<String, ()> = HashMap::new();
    for section in &program.sections {
        match section {
            Section::Var(_) | Section::Define(_) => {}
            Section::Assign(assigns) => {
                for a in assigns {
                    let recorder = opts.record_branches.then_some(&mut branches);
                    let part = compile_assign(
                        &mut ctx,
                        a,
                        &mut assigned_init,
                        &mut assigned_next,
                        recorder,
                    )
                    .map_err(|e| e.with_span(a.span))?;
                    match a.kind {
                        AssignKind::Init => init = ctx.manager.and(init, part),
                        AssignKind::Next => trans = ctx.manager.and(trans, part),
                    }
                }
            }
            Section::Init(e, span) => {
                let b = ctx.eval_bool(e, false).map_err(|err| err.with_span(*span))?;
                init = ctx.manager.and(init, b);
            }
            Section::Trans(e, span) => {
                let b = ctx.eval_bool(e, true).map_err(|err| err.with_span(*span))?;
                trans = ctx.manager.and(trans, b);
            }
            Section::Fairness(e, span) => {
                fairness.push(ctx.eval_bool(e, false).map_err(|err| err.with_span(*span))?);
                fairness_spans.push(*span);
            }
            Section::Spec(s, span) => spec_asts.push((s.clone(), *span)),
        }
    }

    // ---- Compile SPEC leaves to labels. ----
    let mut labels: Vec<(String, Bdd)> = Vec::new();
    let mut compiled_specs: Vec<CompiledSpec> = Vec::new();
    for (i, (spec, spec_span)) in spec_asts.iter().enumerate() {
        let mut leaf_count = 0usize;
        let formula = spec
            .to_ctl(&mut |expr: &Expr| -> Result<Ctl, SmvError> {
                // Trivial leaves keep their own identity.
                match expr {
                    Expr::Bool(true) => return Ok(Ctl::True),
                    Expr::Bool(false) => return Ok(Ctl::False),
                    _ => {}
                }
                let set = ctx.eval_bool(expr, false)?;
                let name = format!("__spec{i}_{leaf_count}");
                leaf_count += 1;
                labels.push((name.clone(), set));
                Ok(Ctl::Atom(name))
            })
            .map_err(|e| e.with_span(*spec_span))?;
        compiled_specs.push(CompiledSpec { source: spec.clone(), formula, span: *spec_span });
    }

    // Register per-variable boolean atoms so boolean vars are usable in
    // externally parsed CTL directly (single-bit vars already carry
    // their own name as a state bit).
    let Ctx { manager, cur, nxt, .. } = ctx;
    let model = SymbolicModel::assemble(manager, names, cur, nxt, init, trans, fairness, labels)?;
    let mut compiled =
        CompiledModel { model, specs: compiled_specs, fairness_spans, branches, vars };
    // The totality check runs the reachability fixpoint — by far the
    // heaviest part of loading a big model — so a caller-supplied budget
    // is installed first.
    if let Some(budget) = budget {
        compiled.model.manager_mut().set_budget(budget);
    }
    if !opts.allow_deadlock {
        compiled.model.check_total()?;
    }
    Ok(compiled)
}

fn bits_for(domain: usize) -> usize {
    debug_assert!(domain >= 1);
    if domain <= 2 {
        1
    } else {
        usize::BITS as usize - (domain - 1).leading_zeros() as usize
    }
}

/// Which variable rail an occurrence refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rail {
    Cur,
    Nxt,
}

/// A guarded value partition: pairs `(value, guard)` with disjoint
/// guards covering the (valid) state space.
type ValueMap = Vec<(Value, Bdd)>;

struct Ctx<'p> {
    manager: BddManager,
    vars: &'p [VarInfo],
    var_index: &'p HashMap<String, usize>,
    defines: &'p HashMap<String, Expr>,
    cur: Vec<Var>,
    nxt: Vec<Var>,
    /// Conjunction of all domain-validity constraints; `case`
    /// exhaustiveness is only required over valid encodings.
    valid: Bdd,
}

impl Ctx<'_> {
    /// The BDD asserting that variable `i` (on the given rail) encodes
    /// the domain value with index `value_index`.
    fn encode(&mut self, var: usize, value_index: usize, rail: Rail) -> Bdd {
        let info = &self.vars[var];
        let mut acc = Bdd::TRUE;
        for b in (0..info.nbits).rev() {
            let bit = match rail {
                Rail::Cur => self.cur[info.first_bit + b],
                Rail::Nxt => self.nxt[info.first_bit + b],
            };
            let lit = self.manager.literal(bit, value_index >> b & 1 == 1);
            acc = self.manager.and(acc, lit);
        }
        acc
    }

    /// The BDD asserting that variable `i`'s encoding is inside its
    /// domain.
    fn valid_encoding(&mut self, var: usize, rail: Rail) -> Bdd {
        let n = self.vars[var].domain.len();
        if n == 1 << self.vars[var].nbits {
            return Bdd::TRUE;
        }
        let mut acc = Bdd::FALSE;
        for idx in 0..n {
            let enc = self.encode(var, idx, rail);
            acc = self.manager.or(acc, enc);
        }
        acc
    }

    /// Evaluates an expression to a guarded value partition.
    ///
    /// `allow_next` permits `next(x)` occurrences (TRANS only);
    /// `sets_ok` permits nondeterministic choice sets (assignment RHS
    /// positions only) — in a set position the returned "partition" is a
    /// may-relation rather than a function.
    fn eval(
        &mut self,
        expr: &Expr,
        allow_next: bool,
        sets_ok: bool,
        depth: usize,
    ) -> Result<ValueMap, SmvError> {
        if depth > 64 {
            return Err(SmvError::semantic("macro recursion too deep"));
        }
        match expr {
            Expr::Bool(b) => Ok(vec![(Value::Bool(*b), Bdd::TRUE)]),
            Expr::Int(i) => Ok(vec![(Value::Int(*i), Bdd::TRUE)]),
            Expr::Ident(name) => {
                if let Some(&i) = self.var_index.get(name) {
                    return Ok(self.var_map(i, Rail::Cur));
                }
                if let Some(def) = self.defines.get(name) {
                    let def = def.clone();
                    return self.eval(&def, allow_next, sets_ok, depth + 1);
                }
                // Enumeration symbol?
                if self.vars.iter().any(|v| v.domain.contains(&Value::Sym(name.clone()))) {
                    return Ok(vec![(Value::Sym(name.clone()), Bdd::TRUE)]);
                }
                Err(SmvError::semantic(format!("unknown identifier {name:?}")))
            }
            Expr::Next(name) => {
                if !allow_next {
                    return Err(SmvError::semantic("next(...) is only allowed inside TRANS"));
                }
                let &i = self
                    .var_index
                    .get(name)
                    .ok_or_else(|| SmvError::semantic(format!("unknown variable {name:?}")))?;
                Ok(self.var_map(i, Rail::Nxt))
            }
            Expr::Not(e) => {
                let b = self.eval_bool_inner(e, allow_next, depth)?;
                let nb = self.manager.not(b);
                Ok(bool_map(nb, b))
            }
            Expr::And(a, b) => self.bool_binop(a, b, allow_next, depth, BddManager::and),
            Expr::Or(a, b) => self.bool_binop(a, b, allow_next, depth, BddManager::or),
            Expr::Implies(a, b) => self.bool_binop(a, b, allow_next, depth, BddManager::implies),
            Expr::Iff(a, b) => self.bool_binop(a, b, allow_next, depth, BddManager::iff),
            Expr::Eq(a, b) => self.compare(a, b, allow_next, depth, "=", |x, y| Ok(x == y)),
            Expr::Neq(a, b) => self.compare(a, b, allow_next, depth, "!=", |x, y| Ok(x != y)),
            Expr::Lt(a, b) => self.compare(a, b, allow_next, depth, "<", int_cmp(|x, y| x < y)),
            Expr::Le(a, b) => self.compare(a, b, allow_next, depth, "<=", int_cmp(|x, y| x <= y)),
            Expr::Gt(a, b) => self.compare(a, b, allow_next, depth, ">", int_cmp(|x, y| x > y)),
            Expr::Ge(a, b) => self.compare(a, b, allow_next, depth, ">=", int_cmp(|x, y| x >= y)),
            Expr::Add(a, b) => self.arith(a, b, allow_next, depth, "+", |x, y| Ok(x + y)),
            Expr::Sub(a, b) => self.arith(a, b, allow_next, depth, "-", |x, y| Ok(x - y)),
            Expr::Mul(a, b) => self.arith(a, b, allow_next, depth, "*", |x, y| Ok(x * y)),
            Expr::Mod(a, b) => self.arith(a, b, allow_next, depth, "mod", |x, y| {
                if y == 0 {
                    Err(SmvError::semantic("modulo by zero"))
                } else {
                    Ok(x.rem_euclid(y))
                }
            }),
            Expr::Case(branches) => {
                let mut remaining = Bdd::TRUE;
                let mut out: ValueMap = Vec::new();
                for branch in branches {
                    let cond = self.eval_bool_inner(&branch.condition, allow_next, depth)?;
                    let guard = self.manager.and(remaining, cond);
                    if !guard.is_false() {
                        let value_map = self.eval(&branch.value, allow_next, sets_ok, depth + 1)?;
                        for (v, g) in value_map {
                            let gg = self.manager.and(g, guard);
                            if !gg.is_false() {
                                merge(&mut self.manager, &mut out, v, gg);
                            }
                        }
                    }
                    let ncond = self.manager.not(cond);
                    remaining = self.manager.and(remaining, ncond);
                    if remaining.is_false() {
                        break;
                    }
                }
                let uncovered = self.manager.and(remaining, self.valid);
                if !uncovered.is_false() {
                    return Err(SmvError::semantic("non-exhaustive case (add a TRUE branch)"));
                }
                Ok(out)
            }
            Expr::Set(elements) => {
                if !sets_ok {
                    return Err(SmvError::semantic(
                        "choice sets {…} are only allowed on assignment right-hand sides",
                    ));
                }
                let mut out: ValueMap = Vec::new();
                for e in elements {
                    for (v, g) in self.eval(e, allow_next, false, depth + 1)? {
                        merge(&mut self.manager, &mut out, v, g);
                    }
                }
                Ok(out)
            }
        }
    }

    fn var_map(&mut self, var: usize, rail: Rail) -> ValueMap {
        (0..self.vars[var].domain.len())
            .map(|idx| {
                let value = self.vars[var].domain[idx].clone();
                let guard = self.encode(var, idx, rail);
                (value, guard)
            })
            .collect()
    }

    /// Evaluates a boolean expression to the BDD of its `TRUE` guard.
    fn eval_bool(&mut self, expr: &Expr, allow_next: bool) -> Result<Bdd, SmvError> {
        self.eval_bool_inner(expr, allow_next, 0)
    }

    fn eval_bool_inner(
        &mut self,
        expr: &Expr,
        allow_next: bool,
        depth: usize,
    ) -> Result<Bdd, SmvError> {
        let map = self.eval(expr, allow_next, false, depth + 1)?;
        let mut acc = Bdd::FALSE;
        for (v, g) in map {
            match v {
                Value::Bool(true) => acc = self.manager.or(acc, g),
                Value::Bool(false) => {}
                other => {
                    return Err(SmvError::semantic(format!(
                        "expected a boolean, found {} value {other}",
                        other.type_name()
                    )));
                }
            }
        }
        Ok(acc)
    }

    fn bool_binop(
        &mut self,
        a: &Expr,
        b: &Expr,
        allow_next: bool,
        depth: usize,
        op: fn(&mut BddManager, Bdd, Bdd) -> Bdd,
    ) -> Result<ValueMap, SmvError> {
        let x = self.eval_bool_inner(a, allow_next, depth)?;
        let y = self.eval_bool_inner(b, allow_next, depth)?;
        let t = op(&mut self.manager, x, y);
        let f = self.manager.not(t);
        Ok(bool_map(t, f))
    }

    fn compare(
        &mut self,
        a: &Expr,
        b: &Expr,
        allow_next: bool,
        depth: usize,
        opname: &str,
        cmp: impl Fn(&Value, &Value) -> Result<bool, SmvError>,
    ) -> Result<ValueMap, SmvError> {
        let ma = self.eval(a, allow_next, false, depth + 1)?;
        let mb = self.eval(b, allow_next, false, depth + 1)?;
        let mut t = Bdd::FALSE;
        for (va, ga) in &ma {
            for (vb, gb) in &mb {
                if va.type_name() != vb.type_name() {
                    return Err(SmvError::semantic(format!(
                        "type mismatch in {}: {} {} {}",
                        opname,
                        va.type_name(),
                        opname,
                        vb.type_name()
                    )));
                }
                if cmp(va, vb)? {
                    let g = self.manager.and(*ga, *gb);
                    t = self.manager.or(t, g);
                }
            }
        }
        let f = self.manager.not(t);
        Ok(bool_map(t, f))
    }

    fn arith(
        &mut self,
        a: &Expr,
        b: &Expr,
        allow_next: bool,
        depth: usize,
        opname: &str,
        op: impl Fn(i64, i64) -> Result<i64, SmvError>,
    ) -> Result<ValueMap, SmvError> {
        let ma = self.eval(a, allow_next, false, depth + 1)?;
        let mb = self.eval(b, allow_next, false, depth + 1)?;
        let mut out: ValueMap = Vec::new();
        for (va, ga) in &ma {
            for (vb, gb) in &mb {
                let (Some(x), Some(y)) = (va.as_int(), vb.as_int()) else {
                    return Err(SmvError::semantic(format!(
                        "arithmetic {} needs integers, found {} and {}",
                        opname,
                        va.type_name(),
                        vb.type_name()
                    )));
                };
                let g = self.manager.and(*ga, *gb);
                if !g.is_false() {
                    let v = Value::Int(op(x, y)?);
                    merge(&mut self.manager, &mut out, v, g);
                }
            }
        }
        Ok(out)
    }
}

fn bool_map(t: Bdd, f: Bdd) -> ValueMap {
    vec![(Value::Bool(true), t), (Value::Bool(false), f)]
}

fn merge(manager: &mut BddManager, map: &mut ValueMap, value: Value, guard: Bdd) {
    if let Some((_, g)) = map.iter_mut().find(|(v, _)| *v == value) {
        *g = manager.or(*g, guard);
    } else {
        map.push((value, guard));
    }
}

/// Compiles one `ASSIGN` into an `init` or `trans` conjunct. When
/// `branches` is provided, the guard of every top-level `case` branch is
/// recorded (and protected) for the analysis layer.
fn compile_assign(
    ctx: &mut Ctx<'_>,
    assign: &Assign,
    assigned_init: &mut HashMap<String, ()>,
    assigned_next: &mut HashMap<String, ()>,
    branches: Option<&mut Vec<AssignBranch>>,
) -> Result<Bdd, SmvError> {
    let &var = ctx
        .var_index
        .get(&assign.var)
        .ok_or_else(|| SmvError::semantic(format!("unknown variable {:?}", assign.var)))?;
    let book = match assign.kind {
        AssignKind::Init => &mut *assigned_init,
        AssignKind::Next => &mut *assigned_next,
    };
    if book.insert(assign.var.clone(), ()).is_some() {
        return Err(SmvError::semantic(format!("variable {:?} assigned twice", assign.var)));
    }
    let rail = match assign.kind {
        AssignKind::Init => Rail::Cur,
        AssignKind::Next => Rail::Nxt,
    };
    if let (Some(out), Expr::Case(case_branches)) = (branches, &assign.rhs) {
        // `case` guards are over current-state variables even in a
        // `next(…)` assign, so "this branch is taken" intersects
        // directly with init / reachable state sets.
        let mut remaining = Bdd::TRUE;
        for (index, b) in case_branches.iter().enumerate() {
            let cond = ctx.eval_bool(&b.condition, false)?;
            let taken = ctx.manager.and(remaining, cond);
            ctx.manager.protect(taken);
            out.push(AssignBranch {
                var: assign.var.clone(),
                kind: assign.kind,
                index,
                span: b.span,
                taken,
                default: matches!(b.condition, Expr::Bool(true)),
            });
            let ncond = ctx.manager.not(cond);
            remaining = ctx.manager.and(remaining, ncond);
        }
    }
    let map = ctx.eval(&assign.rhs, false, true, 0)?;
    let mut part = Bdd::FALSE;
    for (value, guard) in map {
        let idx = ctx.vars[var].domain.iter().position(|v| *v == value).ok_or_else(|| {
            SmvError::semantic(format!("value {value} is outside the domain of {:?}", assign.var))
        })?;
        let enc = ctx.encode(var, idx, rail);
        let conj = ctx.manager.and(guard, enc);
        part = ctx.manager.or(part, conj);
    }
    if part.is_false() {
        return Err(SmvError::semantic(format!("assignment to {:?} is unsatisfiable", assign.var)));
    }
    Ok(part)
}

fn int_cmp(f: impl Fn(i64, i64) -> bool) -> impl Fn(&Value, &Value) -> Result<bool, SmvError> {
    move |a, b| match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => Ok(f(x, y)),
        _ => Err(SmvError::semantic(format!(
            "ordering comparison needs integers, found {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}
