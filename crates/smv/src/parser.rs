//! Recursive-descent parser for the SMV subset.

use crate::ast::{
    Assign, AssignKind, CaseBranch, Decl, Expr, Module, Program, Section, Span, Spec, VarType,
};
use crate::error::SmvError;
use crate::lexer::{tokenize, SpannedTok, Tok};

/// Parses an SMV source text into its AST (one or more `MODULE`s).
///
/// # Errors
///
/// [`SmvError::Parse`] with the offending byte offset.
pub fn parse(input: &str) -> Result<Program, SmvError> {
    let mut p = Parser { toks: tokenize(input)?, pos: 0, len: input.len() };
    let mut modules = Vec::new();
    while p.peek().is_some() {
        modules.push(p.module()?);
    }
    if modules.is_empty() {
        return Err(SmvError::parse(0, "expected MODULE"));
    }
    Ok(Program { modules })
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.len, |t| t.pos)
    }

    /// Byte offset one past the most recently consumed token.
    fn end_of_last(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.toks[self.pos - 1].end
        }
    }

    /// The span from `start` (captured via [`here`](Parser::here) before
    /// parsing a construct) to the end of the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        Span { start, end: self.end_of_last().max(start) }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), SmvError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(SmvError::parse(self.here(), format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SmvError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                if let Some(Tok::Ident(name)) = self.bump() {
                    Ok(name)
                } else {
                    unreachable!("peeked an identifier")
                }
            }
            _ => Err(SmvError::parse(self.here(), format!("expected {what}"))),
        }
    }

    fn module(&mut self) -> Result<Module, SmvError> {
        self.expect(Tok::Module, "MODULE")?;
        let name = self.ident("module name")?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) {
            if self.peek() != Some(&Tok::RParen) {
                params.push(self.ident("parameter name")?);
                while self.eat(&Tok::Comma) {
                    params.push(self.ident("parameter name")?);
                }
            }
            self.expect(Tok::RParen, "')'")?;
        }
        let mut sections = Vec::new();
        while let Some(tok) = self.peek() {
            if tok == &Tok::Module {
                break;
            }
            let start = self.here();
            let section = match tok {
                Tok::Var => {
                    self.bump();
                    Section::Var(self.decls()?)
                }
                Tok::Assign => {
                    self.bump();
                    Section::Assign(self.assigns()?)
                }
                Tok::Define => {
                    self.bump();
                    Section::Define(self.defines()?)
                }
                Tok::Init => {
                    self.bump();
                    let e = self.expr()?;
                    Section::Init(e, self.span_from(start))
                }
                Tok::Trans => {
                    self.bump();
                    let e = self.expr()?;
                    Section::Trans(e, self.span_from(start))
                }
                Tok::Fairness => {
                    self.bump();
                    let e = self.expr()?;
                    Section::Fairness(e, self.span_from(start))
                }
                Tok::Spec => {
                    self.bump();
                    let s = self.spec()?;
                    Section::Spec(s, self.span_from(start))
                }
                _ => {
                    return Err(SmvError::parse(self.here(), "expected a section keyword"));
                }
            };
            sections.push(section);
        }
        Ok(Module { name, params, sections })
    }

    fn decls(&mut self) -> Result<Vec<Decl>, SmvError> {
        let mut decls = Vec::new();
        while let Some(Tok::Ident(_)) = self.peek() {
            let start = self.here();
            let name = self.ident("variable name")?;
            self.expect(Tok::Colon, "':'")?;
            let ty = self.var_type()?;
            self.expect(Tok::Semi, "';'")?;
            decls.push(Decl { name, ty, span: self.span_from(start) });
        }
        Ok(decls)
    }

    fn var_type(&mut self) -> Result<VarType, SmvError> {
        match self.peek() {
            Some(Tok::Boolean) => {
                self.bump();
                Ok(VarType::Boolean)
            }
            // A module instantiation: `name` or `name(args)`.
            Some(Tok::Ident(_)) => {
                let module = self.ident("module name")?;
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) {
                    if self.peek() != Some(&Tok::RParen) {
                        args.push(self.expr()?);
                        while self.eat(&Tok::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                }
                Ok(VarType::Instance(module, args))
            }
            Some(Tok::LBrace) => {
                self.bump();
                let mut symbols = vec![self.ident("enumeration symbol")?];
                while self.eat(&Tok::Comma) {
                    symbols.push(self.ident("enumeration symbol")?);
                }
                self.expect(Tok::RBrace, "'}'")?;
                Ok(VarType::Enum(symbols))
            }
            Some(Tok::Int(_)) | Some(Tok::Minus) => {
                let lo = self.int_literal()?;
                self.expect(Tok::DotDot, "'..'")?;
                let hi = self.int_literal()?;
                if lo > hi {
                    return Err(SmvError::parse(self.here(), "empty integer range"));
                }
                Ok(VarType::Range(lo, hi))
            }
            _ => Err(SmvError::parse(self.here(), "expected a type")),
        }
    }

    fn int_literal(&mut self) -> Result<i64, SmvError> {
        let negative = self.eat(&Tok::Minus);
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if negative { -v } else { v }),
            _ => Err(SmvError::parse(self.here(), "expected an integer")),
        }
    }

    fn assigns(&mut self) -> Result<Vec<Assign>, SmvError> {
        let mut assigns = Vec::new();
        loop {
            let kind = match self.peek() {
                Some(Tok::InitKw) => AssignKind::Init,
                Some(Tok::NextKw) => AssignKind::Next,
                _ => break,
            };
            let start = self.here();
            self.bump();
            self.expect(Tok::LParen, "'('")?;
            let var = self.ident("variable name")?;
            self.expect(Tok::RParen, "')'")?;
            self.expect(Tok::Assigned, "':='")?;
            let rhs = self.expr()?;
            self.expect(Tok::Semi, "';'")?;
            assigns.push(Assign { var, kind, rhs, span: self.span_from(start) });
        }
        Ok(assigns)
    }

    fn defines(&mut self) -> Result<Vec<(String, Expr)>, SmvError> {
        let mut defines = Vec::new();
        while matches!(self.peek(), Some(Tok::Ident(_))) {
            let name = self.ident("macro name")?;
            self.expect(Tok::Assigned, "':='")?;
            let rhs = self.expr()?;
            self.expect(Tok::Semi, "';'")?;
            defines.push((name, rhs));
        }
        Ok(defines)
    }

    // -----------------------------------------------------------------
    // Expressions (loosest to tightest: <-> , -> , | , & , ! , compare,
    // + - , * mod, primary)
    // -----------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SmvError> {
        let mut lhs = self.expr_implies()?;
        while self.eat(&Tok::Iff) {
            let rhs = self.expr_implies()?;
            lhs = Expr::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_implies(&mut self) -> Result<Expr, SmvError> {
        let lhs = self.expr_or()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.expr_implies()?;
            Ok(Expr::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn expr_or(&mut self) -> Result<Expr, SmvError> {
        let mut lhs = self.expr_and()?;
        while self.eat(&Tok::Or) {
            let rhs = self.expr_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, SmvError> {
        let mut lhs = self.expr_not()?;
        while self.eat(&Tok::And) {
            let rhs = self.expr_not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_not(&mut self) -> Result<Expr, SmvError> {
        if self.eat(&Tok::Not) {
            Ok(Expr::Not(Box::new(self.expr_not()?)))
        } else {
            self.expr_cmp()
        }
    }

    fn expr_cmp(&mut self) -> Result<Expr, SmvError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Expr::Eq as fn(_, _) -> _,
            Some(Tok::Neq) => Expr::Neq,
            Some(Tok::Lt) => Expr::Lt,
            Some(Tok::Le) => Expr::Le,
            Some(Tok::Gt) => Expr::Gt,
            Some(Tok::Ge) => Expr::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_add()?;
        Ok(op(Box::new(lhs), Box::new(rhs)))
    }

    fn expr_add(&mut self) -> Result<Expr, SmvError> {
        let mut lhs = self.expr_mul()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.expr_mul()?;
                lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.expr_mul()?;
                lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, SmvError> {
        let mut lhs = self.expr_primary()?;
        loop {
            if self.eat(&Tok::Star) {
                let rhs = self.expr_primary()?;
                lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Mod) {
                let rhs = self.expr_primary()?;
                lhs = Expr::Mod(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_primary(&mut self) -> Result<Expr, SmvError> {
        match self.peek() {
            Some(Tok::True) => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Some(Tok::Int(_)) => {
                if let Some(Tok::Int(v)) = self.bump() {
                    Ok(Expr::Int(v))
                } else {
                    unreachable!("peeked an int")
                }
            }
            Some(Tok::Minus) => {
                self.bump();
                match self.bump() {
                    Some(Tok::Int(v)) => Ok(Expr::Int(-v)),
                    _ => Err(SmvError::parse(self.here(), "expected an integer after '-'")),
                }
            }
            Some(Tok::Ident(_)) => Ok(Expr::Ident(self.ident("identifier")?)),
            Some(Tok::NextKw) => {
                self.bump();
                self.expect(Tok::LParen, "'('")?;
                let var = self.ident("variable name")?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Expr::Next(var))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::LBrace) => {
                self.bump();
                let mut elements = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    elements.push(self.expr()?);
                }
                self.expect(Tok::RBrace, "'}'")?;
                Ok(Expr::Set(elements))
            }
            Some(Tok::Case) => {
                self.bump();
                let mut branches = Vec::new();
                while !self.eat(&Tok::Esac) {
                    let start = self.here();
                    let condition = self.expr()?;
                    self.expect(Tok::Colon, "':'")?;
                    let value = self.expr()?;
                    self.expect(Tok::Semi, "';'")?;
                    branches.push(CaseBranch { condition, value, span: self.span_from(start) });
                }
                if branches.is_empty() {
                    return Err(SmvError::parse(self.here(), "empty case"));
                }
                Ok(Expr::Case(branches))
            }
            _ => Err(SmvError::parse(self.here(), "expected an expression")),
        }
    }

    // -----------------------------------------------------------------
    // SPEC formulas: CTL with expression leaves. The temporal keywords
    // lex as ordinary identifiers, so the spec parser recognizes them by
    // name.
    // -----------------------------------------------------------------

    fn spec(&mut self) -> Result<Spec, SmvError> {
        let mut lhs = self.spec_implies()?;
        while self.eat(&Tok::Iff) {
            let rhs = self.spec_implies()?;
            lhs = Spec::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn spec_implies(&mut self) -> Result<Spec, SmvError> {
        let lhs = self.spec_or()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.spec_implies()?;
            Ok(Spec::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn spec_or(&mut self) -> Result<Spec, SmvError> {
        let mut lhs = self.spec_and()?;
        while self.eat(&Tok::Or) {
            let rhs = self.spec_and()?;
            lhs = Spec::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn spec_and(&mut self) -> Result<Spec, SmvError> {
        let mut lhs = self.spec_unary()?;
        while self.eat(&Tok::And) {
            let rhs = self.spec_unary()?;
            lhs = Spec::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn temporal_keyword(&self) -> Option<&'static str> {
        if let Some(Tok::Ident(name)) = self.peek() {
            for kw in ["EX", "EF", "EG", "AX", "AF", "AG", "E", "A"] {
                if name == kw {
                    return Some(kw);
                }
            }
        }
        None
    }

    fn spec_unary(&mut self) -> Result<Spec, SmvError> {
        if self.eat(&Tok::Not) {
            return Ok(Spec::Not(Box::new(self.spec_unary()?)));
        }
        match self.temporal_keyword() {
            Some("EX") => {
                self.bump();
                Ok(Spec::Ex(Box::new(self.spec_unary()?)))
            }
            Some("EF") => {
                self.bump();
                Ok(Spec::Ef(Box::new(self.spec_unary()?)))
            }
            Some("EG") => {
                self.bump();
                Ok(Spec::Eg(Box::new(self.spec_unary()?)))
            }
            Some("AX") => {
                self.bump();
                Ok(Spec::Ax(Box::new(self.spec_unary()?)))
            }
            Some("AF") => {
                self.bump();
                Ok(Spec::Af(Box::new(self.spec_unary()?)))
            }
            Some("AG") => {
                self.bump();
                Ok(Spec::Ag(Box::new(self.spec_unary()?)))
            }
            Some("E") if self.peek2() == Some(&Tok::LBracket) => {
                self.bump();
                self.bump();
                let f = self.spec()?;
                self.spec_until_sep()?;
                let g = self.spec()?;
                self.expect(Tok::RBracket, "']'")?;
                Ok(Spec::Eu(Box::new(f), Box::new(g)))
            }
            Some("A") if self.peek2() == Some(&Tok::LBracket) => {
                self.bump();
                self.bump();
                let f = self.spec()?;
                self.spec_until_sep()?;
                let g = self.spec()?;
                self.expect(Tok::RBracket, "']'")?;
                Ok(Spec::Au(Box::new(f), Box::new(g)))
            }
            _ => self.spec_leaf(),
        }
    }

    fn spec_until_sep(&mut self) -> Result<(), SmvError> {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == "U" {
                self.bump();
                return Ok(());
            }
        }
        Err(SmvError::parse(self.here(), "expected 'U'"))
    }

    fn spec_leaf(&mut self) -> Result<Spec, SmvError> {
        if self.peek() == Some(&Tok::LParen) {
            // Could be a parenthesized spec or a parenthesized expression;
            // parse as a spec (expressions embed as leaves anyway).
            self.bump();
            let s = self.spec()?;
            self.expect(Tok::RParen, "')'")?;
            return Ok(s);
        }
        // A propositional leaf: parse a comparison-level expression so
        // `state = busy` binds before the surrounding CTL connectives.
        let start = self.pos;
        match self.expr_cmp() {
            Ok(e) => Ok(Spec::Expr(e)),
            Err(e) => {
                self.pos = start;
                Err(e)
            }
        }
    }
}
