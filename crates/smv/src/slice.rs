//! AST-level module slicing for cone-of-influence reduction.
//!
//! [`slice_module`] keeps only the variables in a caller-supplied cone
//! and substitutes literal values for variables the caller has proven
//! constant. It is purely syntactic: the caller (the dataflow analysis
//! in `smc-analysis`) is responsible for choosing a cone that makes the
//! slice sound — in particular, every raw `INIT`/`TRANS` constraint
//! must have its full support inside the cone (raw constraints are
//! kept verbatim), and the support of every `FAIRNESS` constraint must
//! be in the cone (fairness sections are kept too, since fair-path
//! semantics quantify over all of them).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Assign, CaseBranch, Expr, Module, Section, Spec};

/// Returns a copy of `module` restricted to the variables in `keep`.
///
/// - `VAR` declarations and `ASSIGN`s outside `keep` are dropped;
/// - every retained expression has reads of `consts` variables replaced
///   by the given literal (the substitution map must only name
///   variables *outside* `keep`);
/// - raw `INIT`/`TRANS`/`FAIRNESS` sections and all `DEFINE`s are kept
///   (substituted); an unused `DEFINE` that still mentions a dropped
///   variable is harmless — macros are resolved lazily on use;
/// - of the `SPEC` sections, only the one with (0-based) index
///   `spec_index` survives, so the sliced model checks exactly one
///   property; pass `None` to drop every spec (ad-hoc formulas).
pub fn slice_module(
    module: &Module,
    keep: &BTreeSet<String>,
    spec_index: Option<usize>,
    consts: &BTreeMap<String, Expr>,
) -> Module {
    let sub = Subst { consts };
    let mut sections = Vec::with_capacity(module.sections.len());
    let mut spec_seen = 0usize;
    for section in &module.sections {
        match section {
            Section::Var(decls) => {
                let kept: Vec<_> =
                    decls.iter().filter(|d| keep.contains(&d.name)).cloned().collect();
                if !kept.is_empty() {
                    sections.push(Section::Var(kept));
                }
            }
            Section::Assign(assigns) => {
                let kept: Vec<Assign> = assigns
                    .iter()
                    .filter(|a| keep.contains(&a.var))
                    .map(|a| Assign {
                        var: a.var.clone(),
                        kind: a.kind,
                        rhs: sub.expr(&a.rhs),
                        span: a.span,
                    })
                    .collect();
                if !kept.is_empty() {
                    sections.push(Section::Assign(kept));
                }
            }
            Section::Define(defs) => {
                sections.push(Section::Define(
                    defs.iter().map(|(name, e)| (name.clone(), sub.expr(e))).collect(),
                ));
            }
            Section::Init(e, span) => sections.push(Section::Init(sub.expr(e), *span)),
            Section::Trans(e, span) => sections.push(Section::Trans(sub.expr(e), *span)),
            Section::Fairness(e, span) => sections.push(Section::Fairness(sub.expr(e), *span)),
            Section::Spec(spec, span) => {
                if Some(spec_seen) == spec_index {
                    sections.push(Section::Spec(sub.spec(spec), *span));
                }
                spec_seen += 1;
            }
        }
    }
    Module { name: module.name.clone(), params: module.params.clone(), sections }
}

/// Literal-for-variable substitution over expressions and specs.
struct Subst<'a> {
    consts: &'a BTreeMap<String, Expr>,
}

impl Subst<'_> {
    fn expr(&self, e: &Expr) -> Expr {
        if self.consts.is_empty() {
            return e.clone();
        }
        match e {
            Expr::Bool(_) | Expr::Int(_) => e.clone(),
            Expr::Ident(name) => self.consts.get(name).unwrap_or(e).clone(),
            // A constant variable holds its value at every time.
            Expr::Next(name) => self.consts.get(name).unwrap_or(e).clone(),
            Expr::Not(a) => Expr::Not(Box::new(self.expr(a))),
            Expr::And(a, b) => Expr::And(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Or(a, b) => Expr::Or(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Implies(a, b) => Expr::Implies(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Iff(a, b) => Expr::Iff(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Eq(a, b) => Expr::Eq(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Neq(a, b) => Expr::Neq(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Lt(a, b) => Expr::Lt(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Le(a, b) => Expr::Le(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Gt(a, b) => Expr::Gt(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Ge(a, b) => Expr::Ge(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Add(a, b) => Expr::Add(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Mod(a, b) => Expr::Mod(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Case(branches) => Expr::Case(
                branches
                    .iter()
                    .map(|b| CaseBranch {
                        condition: self.expr(&b.condition),
                        value: self.expr(&b.value),
                        span: b.span,
                    })
                    .collect(),
            ),
            Expr::Set(elems) => Expr::Set(elems.iter().map(|e| self.expr(e)).collect()),
        }
    }

    fn spec(&self, s: &Spec) -> Spec {
        match s {
            Spec::Expr(e) => Spec::Expr(self.expr(e)),
            Spec::Not(a) => Spec::Not(Box::new(self.spec(a))),
            Spec::And(a, b) => Spec::And(Box::new(self.spec(a)), Box::new(self.spec(b))),
            Spec::Or(a, b) => Spec::Or(Box::new(self.spec(a)), Box::new(self.spec(b))),
            Spec::Implies(a, b) => Spec::Implies(Box::new(self.spec(a)), Box::new(self.spec(b))),
            Spec::Iff(a, b) => Spec::Iff(Box::new(self.spec(a)), Box::new(self.spec(b))),
            Spec::Ex(a) => Spec::Ex(Box::new(self.spec(a))),
            Spec::Ef(a) => Spec::Ef(Box::new(self.spec(a))),
            Spec::Eg(a) => Spec::Eg(Box::new(self.spec(a))),
            Spec::Eu(a, b) => Spec::Eu(Box::new(self.spec(a)), Box::new(self.spec(b))),
            Spec::Ax(a) => Spec::Ax(Box::new(self.spec(a))),
            Spec::Af(a) => Spec::Af(Box::new(self.spec(a))),
            Spec::Ag(a) => Spec::Ag(Box::new(self.spec(a))),
            Spec::Au(a, b) => Spec::Au(Box::new(self.spec(a)), Box::new(self.spec(b))),
        }
    }
}

#[cfg(test)]
mod slice_tests {
    use super::*;
    use crate::{flatten, parse};

    fn module(src: &str) -> Module {
        flatten(&parse(src).expect("parse")).expect("flatten")
    }

    const TWO_COMPONENTS: &str = "MODULE main\n\
        VAR a : boolean;\nVAR b : boolean;\n\
        ASSIGN\n\
        init(a) := FALSE; next(a) := !a;\n\
        init(b) := FALSE; next(b) := !b;\n\
        SPEC EF a\nSPEC EF b\n";

    #[test]
    fn slicing_keeps_only_cone_variables_and_the_selected_spec() {
        let m = module(TWO_COMPONENTS);
        let keep: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        let sliced = slice_module(&m, &keep, Some(0), &BTreeMap::new());
        let compiled = crate::compile_module(&sliced).expect("sliced model compiles");
        assert_eq!(compiled.var_names(), vec!["a"]);
        assert_eq!(compiled.specs.len(), 1);
    }

    #[test]
    fn keeping_everything_with_one_spec_is_the_identity() {
        let m = module(
            "MODULE main\nVAR a : boolean;\n\
             ASSIGN init(a) := FALSE; next(a) := !a;\nSPEC EF a\n",
        );
        let keep: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        assert_eq!(slice_module(&m, &keep, Some(0), &BTreeMap::new()), m);
    }

    #[test]
    fn constant_substitution_rewrites_reads_everywhere() {
        let m = module(
            "MODULE main\n\
             VAR k : boolean;\nVAR a : boolean;\n\
             DEFINE gated := k & a;\n\
             ASSIGN\n\
             init(k) := FALSE; next(k) := FALSE;\n\
             init(a) := FALSE; next(a) := case k : TRUE; TRUE : !a; esac;\n\
             SPEC EF gated\n",
        );
        let keep: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        let consts: BTreeMap<String, Expr> =
            [("k".to_string(), Expr::Bool(false))].into_iter().collect();
        let sliced = slice_module(&m, &keep, Some(0), &consts);
        let text = format!("{sliced:?}");
        assert!(!text.contains("Ident(\"k\")"), "no read of k survives: {text}");
        let compiled = crate::compile_module(&sliced).expect("sliced model compiles");
        assert_eq!(compiled.var_names(), vec!["a"]);
    }
}
