//! Tokenizer for the SMV subset.

use crate::error::SmvError;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    // Keywords.
    Module,
    Var,
    Assign,
    Define,
    Init,
    Trans,
    Fairness,
    Spec,
    Boolean,
    Case,
    Esac,
    NextKw,
    InitKw,
    True,
    False,
    Mod,
    // Punctuation / operators.
    Colon,
    Semi,
    Comma,
    Assigned, // :=
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    DotDot,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub pos: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

pub(crate) fn tokenize(input: &str) -> Result<Vec<SpannedTok>, SmvError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let pos = i;
        let c = bytes[i] as char;
        let tok = match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                i += 2;
                Tok::Implies
            }
            '-' => {
                i += 1;
                Tok::Minus
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                i += 2;
                Tok::Assigned
            }
            ':' => {
                i += 1;
                Tok::Colon
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                i += 2;
                Tok::Neq
            }
            '!' => {
                i += 1;
                Tok::Not
            }
            '&' => {
                i += 1;
                Tok::And
            }
            '|' => {
                i += 1;
                Tok::Or
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '<' if i + 2 < bytes.len() && bytes[i + 1] == b'-' && bytes[i + 2] == b'>' => {
                i += 3;
                Tok::Iff
            }
            '<' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                i += 2;
                Tok::Le
            }
            '<' => {
                i += 1;
                Tok::Lt
            }
            '>' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                i += 2;
                Tok::Ge
            }
            '>' => {
                i += 1;
                Tok::Gt
            }
            '+' => {
                i += 1;
                Tok::Plus
            }
            '*' => {
                i += 1;
                Tok::Star
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1] == b'.' => {
                i += 2;
                Tok::DotDot
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| SmvError::parse(start, format!("bad integer {text:?}")))?;
                Tok::Int(value)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric()
                        || c == '_'
                        || c == '.' && !(i + 1 < bytes.len() && bytes[i + 1] == b'.')
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                match word {
                    "MODULE" => Tok::Module,
                    "VAR" => Tok::Var,
                    "ASSIGN" => Tok::Assign,
                    "DEFINE" => Tok::Define,
                    "INIT" => Tok::Init,
                    "TRANS" => Tok::Trans,
                    "FAIRNESS" => Tok::Fairness,
                    "SPEC" => Tok::Spec,
                    "boolean" => Tok::Boolean,
                    "case" => Tok::Case,
                    "esac" => Tok::Esac,
                    "next" => Tok::NextKw,
                    "init" => Tok::InitKw,
                    "TRUE" | "true" => Tok::True,
                    "FALSE" | "false" => Tok::False,
                    "mod" => Tok::Mod,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => {
                return Err(SmvError::parse(pos, format!("unexpected character {other:?}")));
            }
        };
        out.push(SpannedTok { tok, pos, end: i });
    }
    Ok(out)
}
