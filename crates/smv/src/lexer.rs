//! Tokenizer for the SMV subset.

use crate::error::SmvError;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    // Keywords.
    Module,
    Var,
    Assign,
    Define,
    Init,
    Trans,
    Fairness,
    Spec,
    Boolean,
    Case,
    Esac,
    NextKw,
    InitKw,
    True,
    False,
    Mod,
    // Punctuation / operators.
    Colon,
    Semi,
    Comma,
    Assigned, // :=
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    DotDot,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub pos: usize,
}

pub(crate) fn tokenize(input: &str) -> Result<Vec<SpannedTok>, SmvError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let pos = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                out.push(SpannedTok { tok: Tok::Implies, pos });
                i += 2;
            }
            '-' => {
                out.push(SpannedTok { tok: Tok::Minus, pos });
                i += 1;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(SpannedTok { tok: Tok::Assigned, pos });
                i += 2;
            }
            ':' => {
                out.push(SpannedTok { tok: Tok::Colon, pos });
                i += 1;
            }
            ';' => {
                out.push(SpannedTok { tok: Tok::Semi, pos });
                i += 1;
            }
            ',' => {
                out.push(SpannedTok { tok: Tok::Comma, pos });
                i += 1;
            }
            '(' => {
                out.push(SpannedTok { tok: Tok::LParen, pos });
                i += 1;
            }
            ')' => {
                out.push(SpannedTok { tok: Tok::RParen, pos });
                i += 1;
            }
            '{' => {
                out.push(SpannedTok { tok: Tok::LBrace, pos });
                i += 1;
            }
            '}' => {
                out.push(SpannedTok { tok: Tok::RBrace, pos });
                i += 1;
            }
            '[' => {
                out.push(SpannedTok { tok: Tok::LBracket, pos });
                i += 1;
            }
            ']' => {
                out.push(SpannedTok { tok: Tok::RBracket, pos });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(SpannedTok { tok: Tok::Neq, pos });
                i += 2;
            }
            '!' => {
                out.push(SpannedTok { tok: Tok::Not, pos });
                i += 1;
            }
            '&' => {
                out.push(SpannedTok { tok: Tok::And, pos });
                i += 1;
            }
            '|' => {
                out.push(SpannedTok { tok: Tok::Or, pos });
                i += 1;
            }
            '=' => {
                out.push(SpannedTok { tok: Tok::Eq, pos });
                i += 1;
            }
            '<' if i + 2 < bytes.len() && bytes[i + 1] == b'-' && bytes[i + 2] == b'>' => {
                out.push(SpannedTok { tok: Tok::Iff, pos });
                i += 3;
            }
            '<' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(SpannedTok { tok: Tok::Le, pos });
                i += 2;
            }
            '<' => {
                out.push(SpannedTok { tok: Tok::Lt, pos });
                i += 1;
            }
            '>' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(SpannedTok { tok: Tok::Ge, pos });
                i += 2;
            }
            '>' => {
                out.push(SpannedTok { tok: Tok::Gt, pos });
                i += 1;
            }
            '+' => {
                out.push(SpannedTok { tok: Tok::Plus, pos });
                i += 1;
            }
            '*' => {
                out.push(SpannedTok { tok: Tok::Star, pos });
                i += 1;
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1] == b'.' => {
                out.push(SpannedTok { tok: Tok::DotDot, pos });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| SmvError::parse(start, format!("bad integer {text:?}")))?;
                out.push(SpannedTok { tok: Tok::Int(value), pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' && !(i + 1 < bytes.len() && bytes[i + 1] == b'.') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let tok = match word {
                    "MODULE" => Tok::Module,
                    "VAR" => Tok::Var,
                    "ASSIGN" => Tok::Assign,
                    "DEFINE" => Tok::Define,
                    "INIT" => Tok::Init,
                    "TRANS" => Tok::Trans,
                    "FAIRNESS" => Tok::Fairness,
                    "SPEC" => Tok::Spec,
                    "boolean" => Tok::Boolean,
                    "case" => Tok::Case,
                    "esac" => Tok::Esac,
                    "next" => Tok::NextKw,
                    "init" => Tok::InitKw,
                    "TRUE" | "true" => Tok::True,
                    "FALSE" | "false" => Tok::False,
                    "mod" => Tok::Mod,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, pos });
            }
            other => {
                return Err(SmvError::parse(pos, format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}
