//! Tests for the SMV frontend: lexing/parsing, compilation semantics,
//! and end-to-end checking of compiled specs.

use smc_checker::Checker;
use smc_kripke::State;

use crate::compile::compile;
use crate::error::SmvError;
use crate::parser::parse;
use crate::value::Value;

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[test]
fn parse_sections_round_trip() {
    let program = parse(
        r#"
        MODULE main  -- a comment
        VAR
          x : boolean;
          st : {idle, busy};
          n : 0..3;
        DEFINE busy_now := st = busy;
        ASSIGN
          init(x) := FALSE;
          next(x) := !x;
        INIT n = 0
        TRANS next(n) = (n + 1) mod 4
        FAIRNESS x
        SPEC AG (busy_now -> AF x)
        "#,
    )
    .expect("parses");
    assert_eq!(program.modules[0].name, "main");
    // VAR, DEFINE, ASSIGN, INIT, TRANS, FAIRNESS, SPEC.
    assert_eq!(program.modules[0].sections.len(), 7);
}

#[test]
fn parse_errors_have_positions() {
    let err = parse("MODULE main VAR x : boolean").unwrap_err();
    assert!(matches!(err, SmvError::Parse { .. }), "{err}");
    let err = parse("VAR x : boolean;").unwrap_err();
    assert!(matches!(err, SmvError::Parse { .. }));
    let err = parse("MODULE main VAR x : {};").unwrap_err();
    assert!(matches!(err, SmvError::Parse { .. }));
}

#[test]
fn parse_case_and_sets() {
    let program = parse(
        r#"
        MODULE main
        VAR st : {a, b};
        ASSIGN
          next(st) := case
              st = a : {a, b};
              TRUE   : a;
            esac;
        "#,
    )
    .expect("parses");
    assert_eq!(program.modules[0].sections.len(), 2);
}

// ---------------------------------------------------------------------
// Compilation semantics
// ---------------------------------------------------------------------

#[test]
fn toggle_compiles_and_checks() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR x : boolean;
        ASSIGN
          init(x) := FALSE;
          next(x) := !x;
        SPEC AG (AF x)
        SPEC AG x
        "#,
    )
    .expect("compiles");
    assert_eq!(compiled.model.num_state_vars(), 1);
    let specs: Vec<_> = compiled.specs.iter().map(|s| s.formula.clone()).collect();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&specs[0]).unwrap().holds());
    assert!(!checker.check(&specs[1]).unwrap().holds());
}

#[test]
fn enum_and_range_encoding() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR
          st : {idle, busy, done};
          n  : 0..4;
        ASSIGN
          init(st) := idle;
          next(st) := case
              st = idle : busy;
              st = busy : done;
              TRUE      : idle;
            esac;
          init(n) := 0;
          next(n) := case
              n < 4 : n + 1;
              TRUE  : 0;
            esac;
        "#,
    )
    .expect("compiles");
    // 3-valued enum uses 2 bits, 5-valued range uses 3 bits.
    assert_eq!(compiled.model.num_state_vars(), 5);
    // Reachable: st cycles through 3 values, n through 5 -> lcm(3,5)=15.
    assert_eq!(compiled.model.reachable_count().unwrap(), 15.0);
    // Decode the initial state.
    let init = compiled.model.init();
    let s0 = compiled.model.pick_state(init).unwrap();
    assert_eq!(compiled.value_of(&s0, "st"), Some(Value::Sym("idle".into())));
    assert_eq!(compiled.value_of(&s0, "n"), Some(Value::Int(0)));
    let rendered = compiled.render_state(&s0);
    assert!(rendered.contains("st=idle"));
    assert!(rendered.contains("n=0"));
}

#[test]
fn nondeterministic_sets_produce_choices() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR st : {a, b, c};
        ASSIGN
          init(st) := a;
          next(st) := case
              st = a : {b, c};
              TRUE   : a;
            esac;
        "#,
    )
    .expect("compiles");
    assert_eq!(compiled.model.reachable_count().unwrap(), 3.0);
    let init = compiled.model.init();
    let s0 = compiled.model.pick_state(init).unwrap();
    let succ = compiled.model.successors(&s0);
    let states = compiled.model.states_in(succ, 8).unwrap();
    let values: Vec<Value> = states.iter().map(|s| compiled.value_of(s, "st").unwrap()).collect();
    assert_eq!(values.len(), 2);
    assert!(values.contains(&Value::Sym("b".into())));
    assert!(values.contains(&Value::Sym("c".into())));
}

#[test]
fn trans_with_next_and_arithmetic() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR n : 0..7;
        INIT n = 0
        TRANS next(n) = (n + 1) mod 8
        SPEC AG (EF n = 7)
        "#,
    )
    .expect("compiles");
    assert_eq!(compiled.model.reachable_count().unwrap(), 8.0);
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds());
}

#[test]
fn fairness_constraints_are_compiled() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR x : boolean;
        INIT !x
        TRANS TRUE
        FAIRNESS x
        SPEC AF x
        "#,
    )
    .expect("compiles");
    assert_eq!(compiled.model.fairness().len(), 1);
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds());
}

#[test]
fn defines_expand() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR n : 0..3;
        DEFINE wrapped := n = 3;
        INIT n = 0
        TRANS next(n) = case
            wrapped : 0;
            TRUE    : n + 1;
          esac
        SPEC AG (wrapped -> AX n = 0)
        "#,
    )
    .expect("compiles");
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds());
}

#[test]
fn counterexample_from_smv_spec() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR st : {ok, bad};
        ASSIGN
          init(st) := ok;
          next(st) := {ok, bad};
        SPEC AG st = ok
        "#,
    )
    .expect("compiles");
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(!checker.check(&spec).unwrap().holds());
    let cx = checker.counterexample(&spec).unwrap();
    let last: &State = cx.states.last().unwrap();
    assert_eq!(compiled.value_of(last, "st"), Some(Value::Sym("bad".into())));
}

// ---------------------------------------------------------------------
// Semantic errors
// ---------------------------------------------------------------------

#[test]
fn semantic_errors_are_reported() {
    // Unknown identifier.
    let err = compile("MODULE main VAR x : boolean; INIT y").unwrap_err();
    assert!(matches!(err, SmvError::Semantic { .. }), "{err}");
    // Value outside domain.
    let err =
        compile("MODULE main VAR n : 0..3; ASSIGN init(n) := 0; next(n) := n + 10;").unwrap_err();
    assert!(matches!(err, SmvError::Semantic { .. }), "{err}");
    // Non-exhaustive case.
    let err = compile("MODULE main VAR x : boolean; ASSIGN next(x) := case x : FALSE; esac;")
        .unwrap_err();
    assert!(format!("{err}").contains("non-exhaustive"), "{err}");
    // next() outside TRANS.
    let err = compile("MODULE main VAR x : boolean; INIT next(x)").unwrap_err();
    assert!(format!("{err}").contains("TRANS"), "{err}");
    // Type mismatch.
    let err = compile("MODULE main VAR x : boolean; VAR n : 0..3; INIT x = n").unwrap_err();
    assert!(format!("{err}").contains("type mismatch"), "{err}");
    // Choice set in a comparison.
    let err = compile("MODULE main VAR n : 0..3; INIT n = {1, 2}").unwrap_err();
    assert!(format!("{err}").contains("choice sets"), "{err}");
    // Double assignment.
    let err =
        compile("MODULE main VAR x : boolean; ASSIGN next(x) := x; next(x) := !x;").unwrap_err();
    assert!(format!("{err}").contains("assigned twice"), "{err}");
    // Modulo by zero.
    let err = compile("MODULE main VAR n : 0..3; INIT n mod 0 = 1").unwrap_err();
    assert!(format!("{err}").contains("modulo"), "{err}");
    // No variables at all.
    let err = compile("MODULE main").unwrap_err();
    assert!(format!("{err}").contains("no variables"), "{err}");
    // Duplicate variable.
    let err = compile("MODULE main VAR x : boolean; x : boolean;").unwrap_err();
    assert!(format!("{err}").contains("twice"), "{err}");
}

#[test]
fn exhaustive_case_over_valid_domain_only() {
    // The enum has 3 values in 2 bits; the case covers all three domain
    // values — the invalid 4th encoding must not count as uncovered.
    compile(
        r#"
        MODULE main
        VAR st : {a, b, c};
        ASSIGN
          init(st) := a;
          next(st) := case
              st = a : b;
              st = b : c;
              st = c : a;
            esac;
        "#,
    )
    .expect("case over the full domain is exhaustive");
}

// ---------------------------------------------------------------------
// Module hierarchy (flattening)
// ---------------------------------------------------------------------

#[test]
fn module_instantiation_flattens() {
    let mut compiled = compile(
        r#"
        MODULE cell(inc)
        VAR n : 0..3;
        DEFINE top := n = 3;
        ASSIGN
          init(n) := 0;
          next(n) := case
              inc & !top : n + 1;
              inc & top  : 0;
              TRUE       : n;
            esac;

        MODULE main
        VAR
          tick : boolean;
          c1 : cell(tick);
          c2 : cell(c1.top);
        ASSIGN
          init(tick) := FALSE;
          next(tick) := !tick;
        SPEC AG (EF c1.top)
        SPEC AG (c2.n = 0 -> EF c2.n = 1)
        "#,
    )
    .expect("compiles");
    // tick (1 bit) + two 0..3 counters (2 bits each).
    assert_eq!(compiled.model.num_state_vars(), 5);
    assert!(compiled.var_names().contains(&"c1.n"));
    assert!(compiled.var_names().contains(&"c2.n"));
    let specs: Vec<_> = compiled.specs.iter().map(|s| s.formula.clone()).collect();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&specs[0]).unwrap().holds(), "c1 reaches top");
    assert!(checker.check(&specs[1]).unwrap().holds(), "c2 advances on c1.top");
}

#[test]
fn nested_modules_flatten_recursively() {
    let mut compiled = compile(
        r#"
        MODULE bit(inc)
        VAR b : boolean;
        ASSIGN
          init(b) := FALSE;
          next(b) := case inc : !b; TRUE : b; esac;
        DEFINE carry := b & inc;

        MODULE pair(inc)
        VAR lo : bit(inc);
            hi : bit(lo.carry);

        MODULE main
        VAR p : pair(TRUE);
        SPEC AG (EF (p.lo.b & p.hi.b))
        "#,
    )
    .expect("compiles");
    assert!(compiled.var_names().contains(&"p.lo.b"));
    assert!(compiled.var_names().contains(&"p.hi.b"));
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds());
    // The flattened pair is a 2-bit counter: 4 reachable states.
    assert_eq!(checker.model().reachable_count().unwrap(), 4.0);
}

#[test]
fn module_fairness_and_specs_are_inherited() {
    let mut compiled = compile(
        r#"
        MODULE worker
        VAR busy : boolean;
        FAIRNESS !busy
        SPEC AG (busy -> AF !busy)

        MODULE main
        VAR w : worker;
        "#,
    )
    .expect("compiles");
    assert_eq!(compiled.model.fairness().len(), 1);
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds(), "inherited fairness spec");
}

#[test]
fn module_errors_are_reported() {
    // Unknown module.
    let err = compile("MODULE main VAR x : nosuch(TRUE);").unwrap_err();
    assert!(format!("{err}").contains("unknown module"), "{err}");
    // Wrong arity.
    let err = compile("MODULE cell(a) VAR n : boolean;\nMODULE main VAR c : cell(TRUE, FALSE);")
        .unwrap_err();
    assert!(format!("{err}").contains("parameter"), "{err}");
    // Recursive instantiation.
    let err = compile("MODULE a VAR x : a;\nMODULE main VAR y : a;").unwrap_err();
    assert!(format!("{err}").contains("recursive"), "{err}");
    // No main.
    let err = compile("MODULE helper VAR x : boolean;").unwrap_err();
    assert!(format!("{err}").contains("no MODULE main"), "{err}");
    // Parameterized main.
    let err = compile("MODULE main(p) VAR x : boolean;").unwrap_err();
    assert!(format!("{err}").contains("parameters"), "{err}");
    // next() of a non-variable argument.
    let err = compile(
        "MODULE cell(a) VAR n : boolean; TRANS next(a) = n\nMODULE main VAR c : cell(TRUE);",
    )
    .unwrap_err();
    assert!(format!("{err}").contains("non-variable"), "{err}");
}

#[test]
fn parameters_bind_parent_scope_expressions() {
    // The argument `x & y` is evaluated in main's scope.
    let mut compiled = compile(
        r#"
        MODULE latch(set)
        VAR q : boolean;
        ASSIGN
          init(q) := FALSE;
          next(q) := q | set;

        MODULE main
        VAR
          x : boolean;
          y : boolean;
          l : latch(x & y);
        SPEC AG ((l.q) -> AG l.q)
        SPEC AG ((x & y) -> AX l.q)
        "#,
    )
    .expect("compiles");
    let spec = compiled.specs[0].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&spec).unwrap().holds(), "latch is sticky");
}

// ---------------------------------------------------------------------
// A classic: mutual exclusion with a nondeterministic scheduler
// ---------------------------------------------------------------------

#[test]
fn mutex_protocol_end_to_end() {
    let mut compiled = compile(
        r#"
        MODULE main
        VAR
          p1 : {idle, trying, critical};
          p2 : {idle, trying, critical};
          turn : boolean;
        ASSIGN
          init(p1) := idle;
          init(p2) := idle;
          next(p1) := case
              p1 = idle                      : {idle, trying};
              p1 = trying & p2 != critical & !turn : critical;
              p1 = trying                    : trying;
              TRUE                           : idle;
            esac;
          next(p2) := case
              p2 = idle                      : {idle, trying};
              p2 = trying & p1 != critical & turn : critical;
              p2 = trying                    : trying;
              TRUE                           : idle;
            esac;
          next(turn) := !turn;
        SPEC AG !(p1 = critical & p2 = critical)
        SPEC AG (p1 = trying -> AF p1 = critical)
        "#,
    )
    .expect("compiles");
    let safety = compiled.specs[0].formula.clone();
    let liveness = compiled.specs[1].formula.clone();
    let mut checker = Checker::new(&mut compiled.model);
    assert!(checker.check(&safety).unwrap().holds(), "mutual exclusion");
    // Liveness holds here because the alternating `turn` forces progress.
    assert!(checker.check(&liveness).unwrap().holds(), "progress");
}
