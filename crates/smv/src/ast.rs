//! Abstract syntax of the SMV subset.

use smc_logic::Ctl;

/// A parsed program: one or more modules, among them `main`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The modules, in source order.
    pub modules: Vec<Module>,
}

impl Program {
    /// The `main` module, if declared.
    pub fn main(&self) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == "main")
    }

    /// Looks a module up by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// One `MODULE name(params) …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (`main` is the entry point).
    pub name: String,
    /// Formal parameters (bound to expressions at instantiation).
    pub params: Vec<String>,
    /// The sections, in source order.
    pub sections: Vec<Section>,
}

/// One section of a module.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// `VAR` declarations.
    Var(Vec<Decl>),
    /// `ASSIGN` blocks: `init(x) := e;` / `next(x) := e;`.
    Assign(Vec<Assign>),
    /// `DEFINE` macros: `name := e;`.
    Define(Vec<(String, Expr)>),
    /// A raw `INIT` constraint.
    Init(Expr),
    /// A raw `TRANS` constraint (may mention `next(…)`).
    Trans(Expr),
    /// A `FAIRNESS` constraint.
    Fairness(Expr),
    /// A CTL `SPEC`.
    Spec(Spec),
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Its type.
    pub ty: VarType,
}

/// Variable types.
#[derive(Debug, Clone, PartialEq)]
pub enum VarType {
    /// `boolean`.
    Boolean,
    /// An enumeration `{a, b, c}`.
    Enum(Vec<String>),
    /// An integer range `lo..hi` (inclusive).
    Range(i64, i64),
    /// A module instantiation `name(args)`; flattened away before
    /// compilation.
    Instance(String, Vec<Expr>),
}

/// One `ASSIGN` item.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The assigned variable.
    pub var: String,
    /// `init(...)` or `next(...)`.
    pub kind: AssignKind,
    /// The right-hand side (may be a choice set or `case`).
    pub rhs: Expr,
}

/// Which rail an assignment constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignKind {
    /// `init(x) := …`.
    Init,
    /// `next(x) := …`.
    Next,
}

/// One branch of a `case … esac`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBranch {
    /// The guard condition.
    pub condition: Expr,
    /// The branch value.
    pub value: Expr,
}

/// SMV expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Identifier: a variable, enum symbol or `DEFINE` macro.
    Ident(String),
    /// `next(x)` — the next-state copy (TRANS only).
    Next(String),
    /// `!e`.
    Not(Box<Expr>),
    /// `e & e`.
    And(Box<Expr>, Box<Expr>),
    /// `e | e`.
    Or(Box<Expr>, Box<Expr>),
    /// `e -> e`.
    Implies(Box<Expr>, Box<Expr>),
    /// `e <-> e`.
    Iff(Box<Expr>, Box<Expr>),
    /// `e = e`.
    Eq(Box<Expr>, Box<Expr>),
    /// `e != e`.
    Neq(Box<Expr>, Box<Expr>),
    /// `e < e`.
    Lt(Box<Expr>, Box<Expr>),
    /// `e <= e`.
    Le(Box<Expr>, Box<Expr>),
    /// `e > e`.
    Gt(Box<Expr>, Box<Expr>),
    /// `e >= e`.
    Ge(Box<Expr>, Box<Expr>),
    /// `e + e`.
    Add(Box<Expr>, Box<Expr>),
    /// `e - e`.
    Sub(Box<Expr>, Box<Expr>),
    /// `e * e`.
    Mul(Box<Expr>, Box<Expr>),
    /// `e mod e`.
    Mod(Box<Expr>, Box<Expr>),
    /// `case cond : value ; … esac` (first matching branch).
    Case(Vec<CaseBranch>),
    /// Nondeterministic choice `{e, e, …}` (assignment RHS only).
    Set(Vec<Expr>),
}

/// A CTL specification whose leaves are SMV expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A propositional leaf.
    Expr(Expr),
    /// Negation.
    Not(Box<Spec>),
    /// Conjunction.
    And(Box<Spec>, Box<Spec>),
    /// Disjunction.
    Or(Box<Spec>, Box<Spec>),
    /// Implication.
    Implies(Box<Spec>, Box<Spec>),
    /// Equivalence.
    Iff(Box<Spec>, Box<Spec>),
    /// `EX`.
    Ex(Box<Spec>),
    /// `EF`.
    Ef(Box<Spec>),
    /// `EG`.
    Eg(Box<Spec>),
    /// `E [φ U ψ]`.
    Eu(Box<Spec>, Box<Spec>),
    /// `AX`.
    Ax(Box<Spec>),
    /// `AF`.
    Af(Box<Spec>),
    /// `AG`.
    Ag(Box<Spec>),
    /// `A [φ U ψ]`.
    Au(Box<Spec>, Box<Spec>),
}

impl Spec {
    /// Maps the spec to a [`Ctl`] formula by converting each leaf with
    /// `leaf` (the compiler registers a model label per leaf).
    pub fn to_ctl<E>(&self, leaf: &mut impl FnMut(&Expr) -> Result<Ctl, E>) -> Result<Ctl, E> {
        Ok(match self {
            Spec::Expr(e) => leaf(e)?,
            Spec::Not(s) => Ctl::not(s.to_ctl(leaf)?),
            Spec::And(a, b) => Ctl::and(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Or(a, b) => Ctl::or(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Implies(a, b) => Ctl::implies(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Iff(a, b) => Ctl::iff(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Ex(s) => Ctl::ex(s.to_ctl(leaf)?),
            Spec::Ef(s) => Ctl::ef(s.to_ctl(leaf)?),
            Spec::Eg(s) => Ctl::eg(s.to_ctl(leaf)?),
            Spec::Eu(a, b) => Ctl::eu(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Ax(s) => Ctl::ax(s.to_ctl(leaf)?),
            Spec::Af(s) => Ctl::af(s.to_ctl(leaf)?),
            Spec::Ag(s) => Ctl::ag(s.to_ctl(leaf)?),
            Spec::Au(a, b) => Ctl::au(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
        })
    }
}
