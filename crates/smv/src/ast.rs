//! Abstract syntax of the SMV subset.

use std::fmt;

use smc_logic::Ctl;

/// A half-open byte range `start..end` into the source text.
///
/// Spans survive flattening unchanged: every module lives in the same
/// source string, so a construct expanded out of a sub-module still
/// points at its original definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A new span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A one-byte span at `pos` (used for parse errors, which record a
    /// single offending offset).
    pub fn point(pos: usize) -> Span {
        Span { start: pos, end: pos + 1 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// A parsed program: one or more modules, among them `main`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The modules, in source order.
    pub modules: Vec<Module>,
}

impl Program {
    /// The `main` module, if declared.
    pub fn main(&self) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == "main")
    }

    /// Looks a module up by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// One `MODULE name(params) …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (`main` is the entry point).
    pub name: String,
    /// Formal parameters (bound to expressions at instantiation).
    pub params: Vec<String>,
    /// The sections, in source order.
    pub sections: Vec<Section>,
}

/// One section of a module.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// `VAR` declarations.
    Var(Vec<Decl>),
    /// `ASSIGN` blocks: `init(x) := e;` / `next(x) := e;`.
    Assign(Vec<Assign>),
    /// `DEFINE` macros: `name := e;`.
    Define(Vec<(String, Expr)>),
    /// A raw `INIT` constraint.
    Init(Expr, Span),
    /// A raw `TRANS` constraint (may mention `next(…)`).
    Trans(Expr, Span),
    /// A `FAIRNESS` constraint.
    Fairness(Expr, Span),
    /// A CTL `SPEC`.
    Spec(Spec, Span),
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Its type.
    pub ty: VarType,
    /// Source span of the whole declaration (`name : type;`).
    pub span: Span,
}

/// Variable types.
#[derive(Debug, Clone, PartialEq)]
pub enum VarType {
    /// `boolean`.
    Boolean,
    /// An enumeration `{a, b, c}`.
    Enum(Vec<String>),
    /// An integer range `lo..hi` (inclusive).
    Range(i64, i64),
    /// A module instantiation `name(args)`; flattened away before
    /// compilation.
    Instance(String, Vec<Expr>),
}

/// One `ASSIGN` item.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The assigned variable.
    pub var: String,
    /// `init(...)` or `next(...)`.
    pub kind: AssignKind,
    /// The right-hand side (may be a choice set or `case`).
    pub rhs: Expr,
    /// Source span of the whole statement (`init(x) := e;`).
    pub span: Span,
}

/// Which rail an assignment constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignKind {
    /// `init(x) := …`.
    Init,
    /// `next(x) := …`.
    Next,
}

/// One branch of a `case … esac`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBranch {
    /// The guard condition.
    pub condition: Expr,
    /// The branch value.
    pub value: Expr,
    /// Source span of the branch (`condition : value;`).
    pub span: Span,
}

/// SMV expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Identifier: a variable, enum symbol or `DEFINE` macro.
    Ident(String),
    /// `next(x)` — the next-state copy (TRANS only).
    Next(String),
    /// `!e`.
    Not(Box<Expr>),
    /// `e & e`.
    And(Box<Expr>, Box<Expr>),
    /// `e | e`.
    Or(Box<Expr>, Box<Expr>),
    /// `e -> e`.
    Implies(Box<Expr>, Box<Expr>),
    /// `e <-> e`.
    Iff(Box<Expr>, Box<Expr>),
    /// `e = e`.
    Eq(Box<Expr>, Box<Expr>),
    /// `e != e`.
    Neq(Box<Expr>, Box<Expr>),
    /// `e < e`.
    Lt(Box<Expr>, Box<Expr>),
    /// `e <= e`.
    Le(Box<Expr>, Box<Expr>),
    /// `e > e`.
    Gt(Box<Expr>, Box<Expr>),
    /// `e >= e`.
    Ge(Box<Expr>, Box<Expr>),
    /// `e + e`.
    Add(Box<Expr>, Box<Expr>),
    /// `e - e`.
    Sub(Box<Expr>, Box<Expr>),
    /// `e * e`.
    Mul(Box<Expr>, Box<Expr>),
    /// `e mod e`.
    Mod(Box<Expr>, Box<Expr>),
    /// `case cond : value ; … esac` (first matching branch).
    Case(Vec<CaseBranch>),
    /// Nondeterministic choice `{e, e, …}` (assignment RHS only).
    Set(Vec<Expr>),
}

impl Expr {
    /// Binding strength for the pretty-printer (looser = smaller).
    fn precedence(&self) -> u8 {
        match self {
            Expr::Iff(..) => 1,
            Expr::Implies(..) => 2,
            Expr::Or(..) => 3,
            Expr::And(..) => 4,
            Expr::Not(..) => 5,
            Expr::Eq(..)
            | Expr::Neq(..)
            | Expr::Lt(..)
            | Expr::Le(..)
            | Expr::Gt(..)
            | Expr::Ge(..) => 6,
            Expr::Add(..) | Expr::Sub(..) => 7,
            Expr::Mul(..) | Expr::Mod(..) => 8,
            _ => 9,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = self.precedence();
        if prec < min {
            write!(f, "(")?;
        }
        match self {
            Expr::Bool(true) => write!(f, "TRUE")?,
            Expr::Bool(false) => write!(f, "FALSE")?,
            Expr::Int(v) => write!(f, "{v}")?,
            Expr::Ident(name) => write!(f, "{name}")?,
            Expr::Next(name) => write!(f, "next({name})")?,
            Expr::Not(e) => {
                write!(f, "!")?;
                e.fmt_prec(f, prec)?;
            }
            Expr::And(a, b) => Self::fmt_binop(f, a, "&", b, prec)?,
            Expr::Or(a, b) => Self::fmt_binop(f, a, "|", b, prec)?,
            Expr::Implies(a, b) => Self::fmt_binop(f, a, "->", b, prec)?,
            Expr::Iff(a, b) => Self::fmt_binop(f, a, "<->", b, prec)?,
            Expr::Eq(a, b) => Self::fmt_binop(f, a, "=", b, prec)?,
            Expr::Neq(a, b) => Self::fmt_binop(f, a, "!=", b, prec)?,
            Expr::Lt(a, b) => Self::fmt_binop(f, a, "<", b, prec)?,
            Expr::Le(a, b) => Self::fmt_binop(f, a, "<=", b, prec)?,
            Expr::Gt(a, b) => Self::fmt_binop(f, a, ">", b, prec)?,
            Expr::Ge(a, b) => Self::fmt_binop(f, a, ">=", b, prec)?,
            Expr::Add(a, b) => Self::fmt_binop(f, a, "+", b, prec)?,
            Expr::Sub(a, b) => Self::fmt_binop(f, a, "-", b, prec)?,
            Expr::Mul(a, b) => Self::fmt_binop(f, a, "*", b, prec)?,
            Expr::Mod(a, b) => Self::fmt_binop(f, a, "mod", b, prec)?,
            Expr::Case(branches) => {
                write!(f, "case ")?;
                for b in branches {
                    write!(f, "{} : {}; ", b.condition, b.value)?;
                }
                write!(f, "esac")?;
            }
            Expr::Set(elements) => {
                write!(f, "{{")?;
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")?;
            }
        }
        if prec < min {
            write!(f, ")")?;
        }
        Ok(())
    }

    fn fmt_binop(
        f: &mut fmt::Formatter<'_>,
        a: &Expr,
        op: &str,
        b: &Expr,
        prec: u8,
    ) -> fmt::Result {
        a.fmt_prec(f, prec)?;
        write!(f, " {op} ")?;
        b.fmt_prec(f, prec + 1)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A CTL specification whose leaves are SMV expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A propositional leaf.
    Expr(Expr),
    /// Negation.
    Not(Box<Spec>),
    /// Conjunction.
    And(Box<Spec>, Box<Spec>),
    /// Disjunction.
    Or(Box<Spec>, Box<Spec>),
    /// Implication.
    Implies(Box<Spec>, Box<Spec>),
    /// Equivalence.
    Iff(Box<Spec>, Box<Spec>),
    /// `EX`.
    Ex(Box<Spec>),
    /// `EF`.
    Ef(Box<Spec>),
    /// `EG`.
    Eg(Box<Spec>),
    /// `E [φ U ψ]`.
    Eu(Box<Spec>, Box<Spec>),
    /// `AX`.
    Ax(Box<Spec>),
    /// `AF`.
    Af(Box<Spec>),
    /// `AG`.
    Ag(Box<Spec>),
    /// `A [φ U ψ]`.
    Au(Box<Spec>, Box<Spec>),
}

impl Spec {
    /// Maps the spec to a [`Ctl`] formula by converting each leaf with
    /// `leaf` (the compiler registers a model label per leaf).
    pub fn to_ctl<E>(&self, leaf: &mut impl FnMut(&Expr) -> Result<Ctl, E>) -> Result<Ctl, E> {
        Ok(match self {
            Spec::Expr(e) => leaf(e)?,
            Spec::Not(s) => Ctl::not(s.to_ctl(leaf)?),
            Spec::And(a, b) => Ctl::and(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Or(a, b) => Ctl::or(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Implies(a, b) => Ctl::implies(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Iff(a, b) => Ctl::iff(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Ex(s) => Ctl::ex(s.to_ctl(leaf)?),
            Spec::Ef(s) => Ctl::ef(s.to_ctl(leaf)?),
            Spec::Eg(s) => Ctl::eg(s.to_ctl(leaf)?),
            Spec::Eu(a, b) => Ctl::eu(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
            Spec::Ax(s) => Ctl::ax(s.to_ctl(leaf)?),
            Spec::Af(s) => Ctl::af(s.to_ctl(leaf)?),
            Spec::Ag(s) => Ctl::ag(s.to_ctl(leaf)?),
            Spec::Au(a, b) => Ctl::au(a.to_ctl(leaf)?, b.to_ctl(leaf)?),
        })
    }

    /// Visits the propositional leaves in `to_ctl` registration order.
    pub fn leaves(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Spec::Expr(e) => out.push(e),
            Spec::Not(s)
            | Spec::Ex(s)
            | Spec::Ef(s)
            | Spec::Eg(s)
            | Spec::Ax(s)
            | Spec::Af(s)
            | Spec::Ag(s) => s.collect_leaves(out),
            Spec::And(a, b)
            | Spec::Or(a, b)
            | Spec::Implies(a, b)
            | Spec::Iff(a, b)
            | Spec::Eu(a, b)
            | Spec::Au(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }
}
