//! A minimal JSON reader for the trace format this crate itself writes.
//!
//! The workspace has no external dependencies, so `smc profile report`
//! and the golden schema tests parse trace lines with this ~150-line
//! recursive-descent parser. It accepts standard JSON (objects, arrays,
//! strings with the common escapes, numbers, booleans, null); it is not
//! a validating general-purpose parser and rejects what it does not
//! understand by returning `None`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; trace values are small integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` to `out` with JSON string escaping (the writer-side dual
/// of [`Parser::string`]).
pub(crate) fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(value)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse::<f64>().ok().map(Json::Num)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_objects() {
        let j = Json::parse(
            r#"{"v":1,"seq":0,"t_us":12,"kind":"span_start","span":1,"name":"reach","ok":true,"x":null,"arr":[1,2.5,-3]}"#,
        )
        .unwrap();
        assert_eq!(j.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("kind").unwrap().as_str(), Some("span_start"));
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("x"), Some(&Json::Null));
        assert_eq!(
            j.get("arr"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]))
        );
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parses_escapes() {
        let j = Json::parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Json::parse("{"), None);
        assert_eq!(Json::parse("{]"), None);
        assert_eq!(Json::parse("{\"a\":1} trailing"), None);
        assert_eq!(Json::parse(""), None);
    }
}
