//! The metrics registry: counters, gauges and log-bucketed histograms
//! with JSON and Prometheus text-format exposition.
//!
//! A [`Metrics`] handle is the write side: cheap to clone (all clones
//! share one registry), free when disabled (the default), and attached
//! to a [`Telemetry`](crate::Telemetry) handle so the span/event stream
//! folds into it automatically ([`Metrics::fold_event`]). Layers that
//! know numbers the event stream does not carry (the BDD manager's
//! per-operation cache counters, the model's reachable-state count, a
//! finished witness trace's length) record them directly.
//!
//! ## Series model
//!
//! A series is a metric name plus an ordered label set, e.g.
//! `smc_fixpoint_iterations_total{phase="reach"}`. Three kinds:
//!
//! - **counter** — monotonically increasing `u64` (rendered with the
//!   `_total` suffix convention),
//! - **gauge** — a point-in-time `f64`,
//! - **histogram** — log-2-bucketed distribution (`le` bounds 1, 2, 4,
//!   8, …) with sum and count, the cheap fixed-size shape for values
//!   spanning orders of magnitude (BDD sizes, hop distances, GC pauses).
//!
//! Exposition is deterministic: series are sorted by name, then labels.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json::esc;
use crate::{lock, Event};

/// Version stamped into the JSON exposition as `"schema"`.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// A series key: metric name plus ordered label pairs.
type SeriesKey = (String, Vec<(String, String)>);

/// Number of log-2 buckets a histogram carries (`le` 1 … 2^63, +Inf).
const HIST_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
struct Hist {
    /// `counts[i]` tallies values in `(2^(i-1), 2^i]`; bucket 0 is
    /// `[0, 1]`.
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { counts: vec![0; HIST_BUCKETS], sum: 0, count: 0 }
    }
}

impl Hist {
    fn observe(&mut self, v: u64) {
        let idx = if v <= 1 { 0 } else { (64 - (v - 1).leading_zeros()) as usize };
        self.counts[idx.min(HIST_BUCKETS - 1)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    /// Highest bucket index holding a value (0 when empty).
    fn top_bucket(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    hists: BTreeMap<SeriesKey, Hist>,
}

/// Help strings for the metric vocabulary, emitted as `# HELP` lines.
/// Append-only: external scrape configs may reference these names.
const HELP: &[(&str, &str)] = &[
    ("smc_spans_total", "Spans closed, by phase."),
    ("smc_span_wall_us", "Span wall time in microseconds, by phase."),
    ("smc_fixpoint_iterations_total", "Fixpoint iterations completed, by loop."),
    ("smc_fixpoint_frontier_nodes", "Frontier BDD size per fixpoint iteration, by loop."),
    ("smc_fixpoint_approx_nodes", "Approximation BDD size per fixpoint iteration, by loop."),
    ("smc_witness_hops_total", "Witness-search hops toward a fairness constraint."),
    ("smc_witness_hop_ring", "EU ring distance of each witness hop."),
    ("smc_witness_cycle_attempts_total", "Cycle-closure attempts, by outcome."),
    ("smc_witness_cycle_arc_states", "States on each closed cycle arc."),
    ("smc_witness_restarts_total", "Witness-search restarts, by exit kind."),
    ("smc_witness_trace_states", "States in each finished witness or counterexample trace."),
    ("smc_witness_cycle_states", "Cycle states in each finished lasso trace."),
    ("smc_gc_runs_total", "Garbage collections run."),
    ("smc_gc_reclaimed_nodes_total", "Nodes reclaimed by garbage collection."),
    ("smc_gc_pause_us", "Garbage-collection pause in microseconds."),
    ("smc_governor_ladder_steps_total", "Degradation-ladder escalations, by stage."),
    ("smc_governor_trips_total", "Resource-governor trips."),
    ("smc_diagnostics_total", "Lint diagnostics reported, by severity."),
    ("smc_bdd_live_nodes", "Live BDD nodes at snapshot time."),
    ("smc_bdd_peak_nodes", "High-water mark of the BDD node pool."),
    ("smc_bdd_created_nodes_total", "Total BDD nodes ever created."),
    ("smc_cache_lookups_total", "Computed-table lookups, by operation."),
    ("smc_cache_hits_total", "Computed-table hits, by operation."),
    ("smc_cache_evictions_total", "Computed-table evictions, by operation."),
    ("smc_model_state_bits", "State variables (bits) of the model."),
    ("smc_model_fairness_constraints", "Fairness constraints of the model."),
    ("smc_model_reachable_states", "Reachable states (when computed)."),
    ("smc_model_trans_nodes", "BDD size of the transition relation."),
    ("smc_batch_jobs_total", "Batch jobs finished, by outcome."),
    ("smc_batch_job_wall_us", "Per-job wall time in microseconds."),
    ("smc_batch_queue_depth", "Jobs waiting in the batch injector queue."),
    ("smc_batch_jobs_in_flight", "Jobs currently executing on workers."),
    ("smc_batch_cache_hits_total", "Warm-start artifact cache hits."),
    ("smc_batch_cache_misses_total", "Warm-start artifact cache misses."),
    ("smc_batch_steals_total", "Jobs taken from another worker's queue."),
    ("smc_batch_cache_evictions_total", "Warm-start artifacts evicted by the LRU size cap."),
    (
        "smc_batch_cache_corrupt_total",
        "Persisted artifacts that failed verification and were deleted.",
    ),
    ("smc_serve_requests_total", "Serve requests executed, by outcome."),
    ("smc_serve_request_wall_us", "Per-request execution wall time in microseconds."),
    ("smc_serve_queue_depth", "Admitted requests waiting for a worker."),
    ("smc_serve_in_flight", "Requests currently executing on serve workers."),
    ("smc_serve_admitted_total", "Requests admitted to the serve queue."),
    ("smc_serve_rejected_total", "Requests rejected at admission, by reason."),
    ("smc_serve_drains_total", "Graceful drains completed."),
    ("smc_serve_watchdog_trips_total", "In-flight jobs cancelled by the serve watchdog."),
    ("smc_serve_quarantine_hits_total", "Requests refused because their source is quarantined."),
    ("smc_serve_inflight_age_us", "Age in microseconds of the oldest in-flight serve request."),
    ("smc_recorder_events_total", "Telemetry events captured by flight recorders."),
    ("smc_recorder_dropped_total", "Flight-recorder events overwritten because a ring was full."),
    ("smc_recorder_dumps_total", "Flight-recorder black-box dumps written."),
    ("smc_bdd_level_nodes", "Live BDD nodes per variable level, by level."),
    ("smc_bdd_table_load", "Unique-table load factor (entries over slots of non-empty tables)."),
    ("smc_bdd_longest_probe", "Longest unique-table probe chain (slots from home)."),
    ("smc_bdd_probe_length", "Unique-table probe distances at snapshot time."),
];

/// The first metric name registered more than once in `table`, if any.
/// Split out from [`help_table`] so the rejection logic itself has a
/// unit test against a deliberately bad table.
fn duplicate_help_name<'a>(table: &[(&'a str, &str)]) -> Option<&'a str> {
    table
        .iter()
        .enumerate()
        .find(|(i, (name, _))| table[..*i].iter().any(|(n, _)| n == name))
        .map(|(_, (name, _))| *name)
}

/// The HELP table, validated once per process: a duplicate metric name
/// is rejected at registration time (first use panics naming the
/// offender) instead of silently emitting two `# HELP` lines for one
/// series and leaving scrapers to pick a winner.
fn help_table() -> &'static [(&'static str, &'static str)] {
    static CHECKED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    CHECKED.get_or_init(|| {
        if let Some(name) = duplicate_help_name(HELP) {
            panic!("duplicate HELP registration for metric {name:?}");
        }
    });
    HELP
}

fn help_for(name: &str) -> Option<&'static str> {
    help_table().iter().find(|(n, _)| *n == name).map(|(_, h)| *h)
}

/// The registered help string for a metric name, if the name is part of
/// the stable vocabulary. Public so schema tests (and external tooling)
/// can pin the vocabulary without scraping an exposition.
pub fn metric_help(name: &str) -> Option<&'static str> {
    help_for(name)
}

/// The metrics write handle. Disabled (the default) every method is a
/// no-op behind one branch; enabled, all clones share one registry.
/// The handle is `Send + Sync`: one registry can collect fleet-level
/// series from many worker threads at once (each write takes a short
/// mutex critical section).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<Registry>>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    (name.to_string(), labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect())
}

impl Metrics {
    /// An enabled handle with an empty registry.
    pub fn new() -> Metrics {
        Metrics { inner: Some(Arc::new(Mutex::new(Registry::default()))) }
    }

    /// The disabled (no-op) handle; same as `Metrics::default()`.
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Will recorded values be kept? The fast guard for call sites whose
    /// payload is expensive to compute (BDD sizing, state counting).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds to a counter series (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let Some(inner) = &self.inner {
            *lock(inner).counters.entry(key(name, labels)).or_insert(0) += v;
        }
    }

    /// Sets a counter series to an absolute value — for end-of-run
    /// snapshots of counters owned elsewhere (the BDD manager's), which
    /// are authoritative over any incrementally folded approximation.
    pub fn counter_set(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let Some(inner) = &self.inner {
            lock(inner).counters.insert(key(name, labels), v);
        }
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            lock(inner).gauges.insert(key(name, labels), v);
        }
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let Some(inner) = &self.inner {
            lock(inner).hists.entry(key(name, labels)).or_default().observe(v);
        }
    }

    /// Reads a counter back (0 when absent); for tests and reports.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| lock(i).counters.get(&key(name, labels)).copied())
            .unwrap_or(0)
    }

    /// Reads a gauge back; for tests and reports.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.as_ref().and_then(|i| lock(i).gauges.get(&key(name, labels)).copied())
    }

    /// Reads a histogram's `(count, sum)` back; for tests and reports.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, u64)> {
        self.inner
            .as_ref()
            .and_then(|i| lock(i).hists.get(&key(name, labels)).map(|h| (h.count, h.sum)))
    }

    /// Folds one telemetry event into the registry. Called by the
    /// [`Telemetry`](crate::Telemetry) handle for every event, so a
    /// metrics-enabled run derives its iteration counts, size
    /// distributions and witness-search tallies from the same stream
    /// the trace file records.
    pub fn fold_event(&self, event: &Event) {
        if !self.enabled() {
            return;
        }
        match event {
            Event::SpanStart { .. } => {}
            Event::SpanEnd { kind, wall_us, .. } => {
                let span = [("span", kind.name())];
                self.counter_add("smc_spans_total", &span, 1);
                self.observe("smc_span_wall_us", &span, *wall_us);
            }
            Event::FixpointIter { phase, frontier_size, approx_size, .. } => {
                let phase = [("phase", phase.name())];
                self.counter_add("smc_fixpoint_iterations_total", &phase, 1);
                self.observe("smc_fixpoint_frontier_nodes", &phase, *frontier_size);
                self.observe("smc_fixpoint_approx_nodes", &phase, *approx_size);
            }
            Event::WitnessHop { ring, .. } => {
                self.counter_add("smc_witness_hops_total", &[], 1);
                self.observe("smc_witness_hop_ring", &[], *ring);
            }
            Event::CycleClose { closed, arc_len } => {
                let outcome = [("closed", if *closed { "true" } else { "false" })];
                self.counter_add("smc_witness_cycle_attempts_total", &outcome, 1);
                if *closed {
                    self.observe("smc_witness_cycle_arc_states", &[], *arc_len);
                }
            }
            Event::Restart { stay_exit, .. } => {
                let exit = [("stay_exit", if *stay_exit { "true" } else { "false" })];
                self.counter_add("smc_witness_restarts_total", &exit, 1);
            }
            Event::Gc { reclaimed, pause_us, .. } => {
                self.counter_add("smc_gc_runs_total", &[], 1);
                self.counter_add("smc_gc_reclaimed_nodes_total", &[], *reclaimed);
                self.observe("smc_gc_pause_us", &[], *pause_us);
            }
            Event::HeapSample {
                live_nodes,
                widest_level,
                widest_width,
                table_len,
                table_slots,
                ..
            } => {
                self.gauge_set("smc_bdd_live_nodes", &[], *live_nodes as f64);
                if *table_slots > 0 {
                    self.gauge_set(
                        "smc_bdd_table_load",
                        &[],
                        *table_len as f64 / *table_slots as f64,
                    );
                }
                let level = widest_level.to_string();
                self.gauge_set(
                    "smc_bdd_level_nodes",
                    &[("level", level.as_str())],
                    *widest_width as f64,
                );
            }
            Event::Ladder { stage } => {
                self.counter_add("smc_governor_ladder_steps_total", &[("stage", stage)], 1);
            }
            Event::Trip { .. } => {
                self.counter_add("smc_governor_trips_total", &[], 1);
            }
            Event::Diagnostic { severity, .. } => {
                self.counter_add("smc_diagnostics_total", &[("severity", severity)], 1);
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, one series per
    /// line, histograms as cumulative `_bucket{le=…}` series plus
    /// `_sum` / `_count`. Deterministic: series sort by name, then
    /// labels.
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let r = lock(inner);
        let mut out = String::new();
        let mut names: Vec<(&String, &str)> = Vec::new();
        names.extend(r.counters.keys().map(|(n, _)| (n, "counter")));
        names.extend(r.gauges.keys().map(|(n, _)| (n, "gauge")));
        names.extend(r.hists.keys().map(|(n, _)| (n, "histogram")));
        names.sort();
        names.dedup();
        for (name, ty) in names {
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP {name} {help}\n"));
            }
            out.push_str(&format!("# TYPE {name} {ty}\n"));
            match ty {
                "counter" => {
                    for ((n, labels), v) in r.counters.range(range_of(name)) {
                        debug_assert_eq!(n, name);
                        out.push_str(&format!("{name}{} {v}\n", render_labels(labels, None)));
                    }
                }
                "gauge" => {
                    for ((_, labels), v) in r.gauges.range(range_of(name)) {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            fmt_f64(*v)
                        ));
                    }
                }
                _ => {
                    for ((_, labels), h) in r.hists.range(range_of(name)) {
                        let top = h.top_bucket();
                        let mut cumulative = 0;
                        for (i, c) in h.counts.iter().enumerate().take(top + 1) {
                            cumulative += c;
                            let le = if i == 0 { 1u64 } else { 1u64 << i };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                render_labels(labels, Some(&le.to_string()))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, Some("+Inf")),
                            h.count
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            h.sum
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object (schema-versioned), the
    /// machine-readable sibling of [`render_prometheus`](Self::render_prometheus).
    pub fn render_json(&self) -> String {
        let Some(inner) = &self.inner else { return "{}".to_string() };
        let r = lock(inner);
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":{METRICS_SCHEMA_VERSION},\"counters\":["));
        let mut first = true;
        for ((name, labels), v) in &r.counters {
            push_sep(&mut out, &mut first);
            out.push_str(&format!("{{{},\"value\":{v}}}", json_series(name, labels)));
        }
        out.push_str("],\"gauges\":[");
        let mut first = true;
        for ((name, labels), v) in &r.gauges {
            push_sep(&mut out, &mut first);
            out.push_str(&format!("{{{},\"value\":{}}}", json_series(name, labels), fmt_f64(*v)));
        }
        out.push_str("],\"histograms\":[");
        let mut first = true;
        for ((name, labels), h) in &r.hists {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{{},\"count\":{},\"sum\":{},\"buckets\":[",
                json_series(name, labels),
                h.count,
                h.sum
            ));
            let top = h.top_bucket();
            let mut first_bucket = true;
            let mut cumulative = 0;
            for (i, c) in h.counts.iter().enumerate().take(top + 1) {
                cumulative += c;
                push_sep(&mut out, &mut first_bucket);
                let le = if i == 0 { 1u64 } else { 1u64 << i };
                out.push_str(&format!("{{\"le\":{le},\"count\":{cumulative}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the human `--stats` table from the registry — the same
    /// series [`render_prometheus`](Self::render_prometheus) exposes, so
    /// `--stats` and `--metrics` report from one source of truth.
    pub fn render_stats(&self) -> String {
        let pct = |hits: u64, lookups: u64| {
            if lookups == 0 {
                0.0
            } else {
                100.0 * hits as f64 / lookups as f64
            }
        };
        let mut out = String::from("-- bdd manager stats --\n");
        out.push_str(&format!(
            "nodes           : {} live, {} peak, {} created\n",
            fmt_f64(self.gauge("smc_bdd_live_nodes", &[]).unwrap_or(0.0)),
            fmt_f64(self.gauge("smc_bdd_peak_nodes", &[]).unwrap_or(0.0)),
            self.counter("smc_bdd_created_nodes_total", &[])
        ));
        // Per-op cache traffic; the aggregate line is the sum over ops.
        let ops = self.label_values("smc_cache_lookups_total", "op");
        let mut totals = (0u64, 0u64, 0u64);
        let mut op_lines = String::new();
        for op in &ops {
            let labels = [("op", op.as_str())];
            let lookups = self.counter("smc_cache_lookups_total", &labels);
            let hits = self.counter("smc_cache_hits_total", &labels);
            let evictions = self.counter("smc_cache_evictions_total", &labels);
            totals = (totals.0 + lookups, totals.1 + hits, totals.2 + evictions);
            if lookups == 0 {
                continue;
            }
            op_lines.push_str(&format!(
                "  {op:<11}: {lookups} lookups, {hits} hits ({:.1}%), {evictions} evictions\n",
                pct(hits, lookups)
            ));
        }
        out.push_str(&format!(
            "computed table  : {} lookups, {} hits ({:.1}%), {} evictions\n",
            totals.0,
            totals.1,
            pct(totals.1, totals.0),
            totals.2
        ));
        out.push_str(&op_lines);
        // Unique-table health, present once a heap snapshot populated
        // the gauges (the manager's end-of-run record is authoritative).
        if let Some(load) = self.gauge("smc_bdd_table_load", &[]) {
            out.push_str(&format!("unique tables   : {load:.3} load factor\n"));
            out.push_str(&format!(
                "longest probe   : {} slots from home\n",
                fmt_f64(self.gauge("smc_bdd_longest_probe", &[]).unwrap_or(0.0))
            ));
        }
        out.push_str(&format!(
            "gc              : {} runs, {} nodes reclaimed\n",
            self.counter("smc_gc_runs_total", &[]),
            self.counter("smc_gc_reclaimed_nodes_total", &[])
        ));
        out
    }

    /// The distinct values label `label` takes on series of `name`, in
    /// registry (sorted) order.
    fn label_values(&self, name: &str, label: &str) -> Vec<String> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let r = lock(inner);
        let mut vals: Vec<String> = r
            .counters
            .range(range_of(name))
            .filter_map(|((_, labels), _)| {
                labels.iter().find(|(k, _)| k == label).map(|(_, v)| v.clone())
            })
            .collect();
        vals.dedup();
        vals
    }
}

/// The range of series keys whose name is exactly `name`.
fn range_of(name: &str) -> std::ops::RangeInclusive<SeriesKey> {
    (name.to_string(), Vec::new())
        ..=(name.to_string(), vec![(String::from("\u{10FFFF}"), String::new())])
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// `{k="v",…}` with an optional trailing `le`; empty label set with no
/// `le` renders as the empty string.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        push_sep(&mut out, &mut first);
        out.push_str(k);
        out.push_str("=\"");
        esc(&mut out, v);
        out.push('"');
    }
    if let Some(le) = le {
        push_sep(&mut out, &mut first);
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

/// `"name":"…","labels":{…}` for the JSON exposition.
fn json_series(name: &str, labels: &[(String, String)]) -> String {
    let mut out = String::from("\"name\":\"");
    esc(&mut out, name);
    out.push_str("\",\"labels\":{");
    let mut first = true;
    for (k, v) in labels {
        push_sep(&mut out, &mut first);
        out.push('"');
        esc(&mut out, k);
        out.push_str("\":\"");
        esc(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Gauges are f64 but almost always hold integral values; render those
/// without a fractional part so the exposition stays diff-friendly.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::FixKind;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        m.counter_add("x", &[], 1);
        m.observe("y", &[], 5);
        assert_eq!(m.counter("x", &[]), 0);
        assert_eq!(m.render_prometheus(), "");
        assert_eq!(m.render_json(), "{}");
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.counter_add("smc_witness_hops_total", &[], 2);
        m2.counter_add("smc_witness_hops_total", &[], 3);
        assert_eq!(m.counter("smc_witness_hops_total", &[]), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let m = Metrics::new();
        for v in [0, 1, 2, 3, 4, 5, 1000] {
            m.observe("smc_witness_hop_ring", &[], v);
        }
        assert_eq!(m.histogram("smc_witness_hop_ring", &[]), Some((7, 1015)));
        let text = m.render_prometheus();
        // 0 and 1 land in le="1"; 2 in le="2"; 3 and 4 in le="4";
        // 5 in le="8"; 1000 in le="1024". Buckets are cumulative.
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"4\"} 5"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"8\"} 6"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"1024\"} 7"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_bucket{le=\"+Inf\"} 7"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_sum 1015"), "{text}");
        assert!(text.contains("smc_witness_hop_ring_count 7"), "{text}");
    }

    #[test]
    fn fold_event_derives_series_from_the_stream() {
        let m = Metrics::new();
        m.fold_event(&Event::FixpointIter {
            phase: FixKind::Reach,
            iteration: 1,
            frontier_size: 12,
            approx_size: 30,
            live_nodes: 100,
            peak_nodes: 120,
            d_lookups: 5,
            d_hits: 2,
        });
        m.fold_event(&Event::WitnessHop { constraint: 0, ring: 3 });
        m.fold_event(&Event::CycleClose { closed: true, arc_len: 7 });
        m.fold_event(&Event::Gc { reclaimed: 10, live_before: 30, live_after: 20, pause_us: 55 });
        assert_eq!(m.counter("smc_fixpoint_iterations_total", &[("phase", "reach")]), 1);
        assert_eq!(m.counter("smc_witness_hops_total", &[]), 1);
        assert_eq!(m.counter("smc_witness_cycle_attempts_total", &[("closed", "true")]), 1);
        assert_eq!(m.counter("smc_gc_reclaimed_nodes_total", &[]), 10);
        assert_eq!(m.histogram("smc_gc_pause_us", &[]), Some((1, 55)));
        assert_eq!(
            m.histogram("smc_fixpoint_frontier_nodes", &[("phase", "reach")]),
            Some((1, 12))
        );
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_typed() {
        let m = Metrics::new();
        m.counter_add("smc_cache_lookups_total", &[("op", "or")], 7);
        m.counter_add("smc_cache_lookups_total", &[("op", "and")], 3);
        m.gauge_set("smc_bdd_live_nodes", &[], 42.0);
        let text = m.render_prometheus();
        let expected = "\
# HELP smc_bdd_live_nodes Live BDD nodes at snapshot time.
# TYPE smc_bdd_live_nodes gauge
smc_bdd_live_nodes 42
# HELP smc_cache_lookups_total Computed-table lookups, by operation.
# TYPE smc_cache_lookups_total counter
smc_cache_lookups_total{op=\"and\"} 3
smc_cache_lookups_total{op=\"or\"} 7
";
        assert_eq!(text, expected);
        assert_eq!(text, m.render_prometheus(), "rendering must be stable");
    }

    #[test]
    fn json_exposition_parses_back() {
        let m = Metrics::new();
        m.counter_add("smc_witness_hops_total", &[], 4);
        m.gauge_set("smc_model_state_bits", &[], 9.0);
        m.observe("smc_span_wall_us", &[("span", "reach")], 100);
        let j = crate::Json::parse(&m.render_json()).unwrap();
        assert_eq!(j.get("schema").unwrap().as_u64(), Some(METRICS_SCHEMA_VERSION));
        let crate::Json::Arr(counters) = j.get("counters").unwrap() else { panic!("counters") };
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(4));
        let crate::Json::Arr(hists) = j.get("histograms").unwrap() else { panic!("histograms") };
        assert_eq!(hists[0].get("sum").unwrap().as_u64(), Some(100));
        assert_eq!(hists[0].get("labels").unwrap().get("span").unwrap().as_str(), Some("reach"));
    }

    #[test]
    fn help_registration_rejects_duplicate_names() {
        // The shipped table must be clean (this also primes the
        // OnceLock so every later lookup is a plain linear scan)…
        assert_eq!(duplicate_help_name(help_table()), None);
        // …and the checker itself must catch a duplicate registration
        // instead of letting two HELP lines ship for one series.
        let bad = [
            ("smc_a_total", "first"),
            ("smc_b_total", "fine"),
            ("smc_a_total", "second registration"),
        ];
        assert_eq!(duplicate_help_name(&bad), Some("smc_a_total"));
    }

    #[test]
    fn recorder_and_inflight_series_have_pinned_help() {
        for name in [
            "smc_serve_inflight_age_us",
            "smc_recorder_events_total",
            "smc_recorder_dropped_total",
            "smc_recorder_dumps_total",
        ] {
            assert!(metric_help(name).is_some(), "missing HELP for {name}");
        }
    }

    #[test]
    fn stats_table_reports_from_the_registry() {
        let m = Metrics::new();
        m.gauge_set("smc_bdd_live_nodes", &[], 10.0);
        m.gauge_set("smc_bdd_peak_nodes", &[], 20.0);
        m.counter_set("smc_bdd_created_nodes_total", &[], 30);
        m.counter_set("smc_cache_lookups_total", &[("op", "and")], 100);
        m.counter_set("smc_cache_hits_total", &[("op", "and")], 40);
        m.counter_set("smc_cache_evictions_total", &[("op", "and")], 1);
        m.counter_set("smc_cache_lookups_total", &[("op", "xor")], 0);
        m.counter_set("smc_gc_runs_total", &[], 2);
        m.counter_set("smc_gc_reclaimed_nodes_total", &[], 500);
        m.gauge_set("smc_bdd_table_load", &[], 0.625);
        m.gauge_set("smc_bdd_longest_probe", &[], 3.0);
        let text = m.render_stats();
        assert!(text.contains("-- bdd manager stats --"), "{text}");
        assert!(text.contains("10 live, 20 peak, 30 created"), "{text}");
        assert!(text.contains("100 lookups, 40 hits (40.0%), 1 evictions"), "{text}");
        assert!(!text.contains("xor"), "zero-traffic ops are hidden: {text}");
        assert!(text.contains("2 runs, 500 nodes reclaimed"), "{text}");
        assert!(text.contains("unique tables   : 0.625 load factor"), "{text}");
        assert!(text.contains("longest probe   : 3 slots from home"), "{text}");
    }

    #[test]
    fn heap_sample_folds_into_the_table_gauges() {
        let m = Metrics::new();
        m.fold_event(&Event::HeapSample {
            live_nodes: 120,
            free_nodes: 8,
            widest_level: 3,
            widest_width: 40,
            table_len: 118,
            table_slots: 236,
        });
        assert_eq!(m.gauge("smc_bdd_live_nodes", &[]), Some(120.0));
        assert_eq!(m.gauge("smc_bdd_table_load", &[]), Some(0.5));
        assert_eq!(m.gauge("smc_bdd_level_nodes", &[("level", "3")]), Some(40.0));
    }
}
