//! The in-memory aggregator behind `--profile` and
//! `smc profile report`: folds an event stream into per-span totals and
//! renders the post-run profile table.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{lock, Event, EventCtx, Sink, SpanKind};

#[derive(Debug, Default, Clone, Copy)]
struct Row {
    count: u64,
    total_us: u64,
    self_us: u64,
    iterations: u64,
    peak_nodes: u64,
    d_lookups: u64,
    d_hits: u64,
}

#[derive(Debug, Default)]
struct ProfileData {
    /// Open spans: kind plus the wall time of closed children, so a
    /// closing span can report self = total − children.
    stack: Vec<(SpanKind, u64)>,
    rows: BTreeMap<SpanKind, Row>,
    events: u64,
    wall_us: u64,
    hops: u64,
    cycle_attempts: u64,
    cycle_closed: u64,
    restarts: u64,
    stay_exits: u64,
    gc_runs: u64,
    gc_reclaimed: u64,
    ladder: Vec<&'static str>,
    trips: Vec<String>,
}

/// An aggregating [`Sink`]. Cloning shares the underlying tallies, so
/// the caller can hand one clone to the telemetry handle and keep
/// another to [`render`](ProfileAggregator::render) after the run. The
/// tallies sit behind an `Arc<Mutex<…>>`, so the aggregator can ride a
/// session onto a worker thread.
#[derive(Debug, Clone, Default)]
pub struct ProfileAggregator {
    data: Arc<Mutex<ProfileData>>,
}

impl ProfileAggregator {
    /// An empty aggregator.
    pub fn new() -> ProfileAggregator {
        ProfileAggregator::default()
    }

    /// Renders the profile report table (all rows).
    pub fn render(&self) -> String {
        self.render_top(None)
    }

    /// The report's rows in display order: hottest first (self time
    /// descending), span name ascending as the tie-break so equal self
    /// times render deterministically.
    fn sorted_rows(&self) -> Vec<(SpanKind, Row)> {
        let d = lock(&self.data);
        let mut rows: Vec<(SpanKind, Row)> = d.rows.iter().map(|(k, r)| (*k, *r)).collect();
        rows.sort_by(|(ak, ar), (bk, br)| {
            br.self_us.cmp(&ar.self_us).then_with(|| ak.name().cmp(bk.name()))
        });
        rows
    }

    /// Renders the profile report table, hottest span first, keeping
    /// only the top `top` rows when given.
    ///
    /// `total` sums a kind over every span of that kind, so nested
    /// same-kind spans (a re-entrant witness) can exceed the wall
    /// clock; `self` excludes child spans and is additive.
    pub fn render_top(&self, top: Option<usize>) -> String {
        let rows = self.sorted_rows();
        let shown = top.unwrap_or(rows.len()).min(rows.len());
        let d = lock(&self.data);
        let mut out = String::new();
        out.push_str(&format!("-- profile report (schema v{}) --\n", crate::SCHEMA_VERSION));
        out.push_str(&format!("wall {}  ({} events)\n", fmt_us(d.wall_us), d.events));
        out.push_str(&format!(
            "{:<11} {:>6} {:>10} {:>10} {:>7} {:>11}  {}\n",
            "span", "count", "total", "self", "iters", "peak nodes", "cache hit rate"
        ));
        for (kind, row) in rows.iter().take(shown) {
            let rate = if row.d_lookups == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}% of {}",
                    100.0 * row.d_hits as f64 / row.d_lookups as f64,
                    row.d_lookups
                )
            };
            out.push_str(&format!(
                "{:<11} {:>6} {:>10} {:>10} {:>7} {:>11}  {}\n",
                kind.name(),
                row.count,
                fmt_us(row.total_us),
                fmt_us(row.self_us),
                if row.iterations == 0 { "-".to_string() } else { row.iterations.to_string() },
                row.peak_nodes,
                rate
            ));
        }
        if shown < rows.len() {
            out.push_str(&format!(
                "({} cooler spans hidden by --top {shown})\n",
                rows.len() - shown
            ));
        }
        out.push_str(&format!(
            "witness search: {} hops, {} cycle attempts ({} closed), {} restarts, {} stay exits\n",
            d.hops, d.cycle_attempts, d.cycle_closed, d.restarts, d.stay_exits
        ));
        out.push_str(&format!(
            "gc: {} runs, {} nodes reclaimed; ladder: {}; trips: {}\n",
            d.gc_runs,
            d.gc_reclaimed,
            if d.ladder.is_empty() { "none".to_string() } else { d.ladder.join(" -> ") },
            if d.trips.is_empty() { "none".to_string() } else { d.trips.join("; ") },
        ));
        out
    }

    /// Renders the report as one JSON object — same rows, same order,
    /// same `--top` semantics as [`render_top`](Self::render_top), with
    /// times in raw microseconds.
    pub fn render_json(&self, top: Option<usize>) -> String {
        let rows = self.sorted_rows();
        let shown = top.unwrap_or(rows.len()).min(rows.len());
        let d = lock(&self.data);
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":{},\"wall_us\":{},\"events\":{},\"spans\":[",
            crate::SCHEMA_VERSION,
            d.wall_us,
            d.events
        ));
        for (i, (kind, row)) in rows.iter().take(shown).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"span\":\"{}\",\"count\":{},\"total_us\":{},\"self_us\":{},\
                 \"iterations\":{},\"peak_nodes\":{},\"d_lookups\":{},\"d_hits\":{}}}",
                kind.name(),
                row.count,
                row.total_us,
                row.self_us,
                row.iterations,
                row.peak_nodes,
                row.d_lookups,
                row.d_hits
            ));
        }
        out.push_str(&format!(
            "],\"hidden_spans\":{},\"witness\":{{\"hops\":{},\"cycle_attempts\":{},\
             \"cycle_closed\":{},\"restarts\":{},\"stay_exits\":{}}},\
             \"gc\":{{\"runs\":{},\"reclaimed\":{}}},\"trips\":{}}}",
            rows.len() - shown,
            d.hops,
            d.cycle_attempts,
            d.cycle_closed,
            d.restarts,
            d.stay_exits,
            d.gc_runs,
            d.gc_reclaimed,
            d.trips.len()
        ));
        out.push('\n');
        out
    }
}

impl Sink for ProfileAggregator {
    fn record(&mut self, ctx: &EventCtx, event: &Event) {
        let mut d = lock(&self.data);
        d.events += 1;
        d.wall_us = d.wall_us.max(ctx.t_us);
        match event {
            Event::SpanStart { kind, .. } => {
                d.stack.push((*kind, 0));
            }
            Event::SpanEnd { kind, wall_us, peak_nodes, delta, .. } => {
                // Tolerate traces whose open/close pairing we did not
                // observe from the beginning (e.g. a truncated file).
                let children_us = match d.stack.pop() {
                    Some((_, c)) => c,
                    None => 0,
                };
                if let Some((_, parent_children)) = d.stack.last_mut() {
                    *parent_children += wall_us;
                }
                let row = d.rows.entry(*kind).or_default();
                row.count += 1;
                row.total_us += wall_us;
                row.self_us += wall_us.saturating_sub(children_us);
                row.peak_nodes = row.peak_nodes.max(*peak_nodes);
                row.d_lookups += delta.cache_lookups;
                row.d_hits += delta.cache_hits;
            }
            Event::FixpointIter { peak_nodes, .. } => {
                if let Some(&(kind, _)) = d.stack.last() {
                    let row = d.rows.entry(kind).or_default();
                    row.iterations += 1;
                    row.peak_nodes = row.peak_nodes.max(*peak_nodes);
                }
            }
            Event::WitnessHop { .. } => d.hops += 1,
            Event::CycleClose { closed, .. } => {
                d.cycle_attempts += 1;
                if *closed {
                    d.cycle_closed += 1;
                }
            }
            Event::Restart { stay_exit, .. } => {
                d.restarts += 1;
                if *stay_exit {
                    d.stay_exits += 1;
                }
            }
            Event::Gc { reclaimed, .. } => {
                d.gc_runs += 1;
                d.gc_reclaimed += reclaimed;
            }
            Event::Ladder { stage } => {
                if !d.ladder.contains(stage) {
                    d.ladder.push(stage);
                }
            }
            Event::Trip { reason } => d.trips.push(reason.clone()),
            // Lint findings carry no timing information, and heap
            // samples are structural (the heap lane lives in the
            // Chrome export, not the span profile).
            Event::Diagnostic { .. } | Event::HeapSample { .. } => {}
        }
    }
}

/// Renders a profile report from the text of a JSON-lines trace file —
/// the engine behind `smc profile report FILE.jsonl`.
///
/// # Errors
///
/// A description of the problem if no line of `text` parses as a trace
/// record. Unparseable lines among parseable ones are counted and noted
/// in the report instead (a truncated trailing line must not void a
/// long trace).
pub fn report_from_jsonl(text: &str) -> Result<String, String> {
    report_from_jsonl_with(text, false, None)
}

/// [`report_from_jsonl`] with output options: `json` switches to the
/// machine-readable rendering, `top` keeps only the N hottest spans.
///
/// # Errors
///
/// Same contract as [`report_from_jsonl`].
pub fn report_from_jsonl_with(
    text: &str,
    json: bool,
    top: Option<usize>,
) -> Result<String, String> {
    let mut agg = ProfileAggregator::new();
    let mut parsed = 0u64;
    let mut skipped = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Some((ctx, event)) => {
                parsed += 1;
                agg.record(&ctx, &event);
            }
            None => skipped += 1,
        }
    }
    if parsed == 0 {
        return Err(format!(
            "no trace records found ({skipped} unparseable lines); \
             expected JSON lines with a \"v\" schema field"
        ));
    }
    if json {
        return Ok(agg.render_json(top));
    }
    let mut report = agg.render_top(top);
    if skipped > 0 {
        report.push_str(&format!("({skipped} unparseable lines skipped)\n"));
    }
    Ok(report)
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{FixKind, StatsDelta};

    fn ctx(seq: u64, t_us: u64) -> EventCtx {
        EventCtx::new(seq, t_us)
    }

    #[test]
    fn nesting_attributes_self_time() {
        let mut agg = ProfileAggregator::new();
        agg.record(&ctx(0, 0), &Event::SpanStart { id: 1, kind: SpanKind::FairEg, label: None });
        agg.record(&ctx(1, 10), &Event::SpanStart { id: 2, kind: SpanKind::CheckEu, label: None });
        agg.record(
            &ctx(2, 40),
            &Event::SpanEnd {
                id: 2,
                kind: SpanKind::CheckEu,
                wall_us: 30,
                live_nodes: 5,
                peak_nodes: 9,
                delta: StatsDelta { cache_lookups: 10, cache_hits: 6, ..Default::default() },
            },
        );
        agg.record(
            &ctx(3, 100),
            &Event::SpanEnd {
                id: 1,
                kind: SpanKind::FairEg,
                wall_us: 100,
                live_nodes: 5,
                peak_nodes: 9,
                delta: StatsDelta { cache_lookups: 25, cache_hits: 9, ..Default::default() },
            },
        );
        let report = agg.render();
        // fair_eg: total 100, self 70 (30 spent in the child EU).
        assert!(report.contains("fair_eg"), "{report}");
        assert!(report.contains("70 us"), "{report}");
        assert!(report.contains("60.0% of 10"), "{report}");
    }

    #[test]
    fn iterations_attach_to_the_open_span() {
        let mut agg = ProfileAggregator::new();
        agg.record(&ctx(0, 0), &Event::SpanStart { id: 1, kind: SpanKind::Reach, label: None });
        for i in 1..=4 {
            agg.record(
                &ctx(i, i * 10),
                &Event::FixpointIter {
                    phase: FixKind::Reach,
                    iteration: i,
                    frontier_size: 3,
                    approx_size: 9,
                    live_nodes: 50,
                    peak_nodes: 60 + i,
                    d_lookups: 4,
                    d_hits: 2,
                },
            );
        }
        agg.record(
            &ctx(5, 50),
            &Event::SpanEnd {
                id: 1,
                kind: SpanKind::Reach,
                wall_us: 50,
                live_nodes: 50,
                peak_nodes: 64,
                delta: StatsDelta::default(),
            },
        );
        let report = agg.render();
        assert!(report.contains("reach"), "{report}");
        let reach_line = report.lines().find(|l| l.starts_with("reach")).unwrap();
        assert!(reach_line.contains(" 4 "), "iters column: {reach_line}");
        assert!(reach_line.contains("64"), "peak column: {reach_line}");
    }

    /// Two spans with distinct self times, two with equal (zero) ones.
    fn multi_span_agg() -> ProfileAggregator {
        let mut agg = ProfileAggregator::new();
        let mut t = 0;
        let mut span = |agg: &mut ProfileAggregator, kind: SpanKind, wall: u64| {
            agg.record(&ctx(0, t), &Event::SpanStart { id: t, kind, label: None });
            t += wall;
            agg.record(
                &ctx(1, t),
                &Event::SpanEnd {
                    id: t - wall,
                    kind,
                    wall_us: wall,
                    live_nodes: 0,
                    peak_nodes: 0,
                    delta: StatsDelta::default(),
                },
            );
        };
        span(&mut agg, SpanKind::Witness, 50);
        span(&mut agg, SpanKind::Reach, 200);
        span(&mut agg, SpanKind::CheckEg, 0);
        span(&mut agg, SpanKind::CheckEu, 0);
        agg
    }

    #[test]
    fn rows_sort_hottest_first_with_name_tiebreak() {
        let report = multi_span_agg().render();
        let order: Vec<&str> =
            report.lines().skip(3).filter_map(|l| l.split_whitespace().next()).take(4).collect();
        // reach (200) > witness (50) > the two zero-self spans in name
        // order: check_eg before check_eu.
        assert_eq!(order, ["reach", "witness", "check_eg", "check_eu"], "{report}");
    }

    #[test]
    fn top_limits_rows_and_reports_the_cut() {
        let report = multi_span_agg().render_top(Some(1));
        assert!(report.contains("reach"), "{report}");
        assert!(!report.contains("witness search: 0 hops\nwitness"), "{report}");
        assert!(report.lines().all(|l| !l.starts_with("check_eu")), "{report}");
        assert!(report.contains("(3 cooler spans hidden by --top 1)"), "{report}");
    }

    #[test]
    fn json_report_mirrors_the_table() {
        let agg = multi_span_agg();
        let j = crate::Json::parse(&agg.render_json(Some(2))).unwrap();
        assert_eq!(j.get("schema").unwrap().as_u64(), Some(crate::SCHEMA_VERSION));
        let crate::Json::Arr(spans) = j.get("spans").unwrap() else { panic!("spans") };
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("span").unwrap().as_str(), Some("reach"));
        assert_eq!(spans[0].get("self_us").unwrap().as_u64(), Some(200));
        assert_eq!(spans[1].get("span").unwrap().as_str(), Some("witness"));
        assert_eq!(j.get("hidden_spans").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn report_from_jsonl_counts_bad_lines() {
        let good = Event::WitnessHop { constraint: 1, ring: 2 }.to_json_line(&ctx(0, 5));
        let text = format!("{good}\nnot json\n");
        let report = report_from_jsonl(&text).unwrap();
        assert!(report.contains("1 hops"), "{report}");
        assert!(report.contains("1 unparseable"), "{report}");
        assert!(report_from_jsonl("junk\n").is_err());
    }
}
