//! The event taxonomy and its JSON-lines wire format.
//!
//! ## Schema contract
//!
//! Every record is one JSON object per line with the common required
//! keys `v` (schema version, [`crate::SCHEMA_VERSION`]), `seq`
//! (monotonic sequence number), `t_us` (microseconds since the handle
//! was created) and `kind`. Each kind then carries its own required
//! keys, pinned by the golden test in `tests/schema.rs`:
//!
//! | kind            | required keys |
//! |-----------------|---------------|
//! | `span_start`    | `span`, `name` (+ optional `label`) |
//! | `span_end`      | `span`, `name`, `wall_us`, `live_nodes`, `peak_nodes`, `d_created`, `d_lookups`, `d_hits`, `d_evictions`, `d_gc_runs`, `d_gc_reclaimed` |
//! | `fixpoint_iter` | `phase`, `iteration`, `frontier_size`, `approx_size`, `live_nodes`, `peak_nodes`, `d_lookups`, `d_hits` |
//! | `witness_hop`   | `constraint`, `ring` |
//! | `cycle_close`   | `closed`, `arc_len` |
//! | `restart`       | `count`, `stay_exit`, `frontier` |
//! | `gc`            | `reclaimed`, `live_before`, `live_after` (+ optional `pause_us`) |
//! | `heap_sample`   | `live_nodes`, `free_nodes`, `widest_level`, `widest_width`, `table_len`, `table_slots` |
//! | `ladder`        | `stage` |
//! | `trip`          | `reason` |
//! | `diagnostic`    | `code`, `severity` |
//!
//! Removing or re-typing a required key bumps `v`; new optional keys
//! may appear at any time and consumers must ignore unknown keys.
//!
//! Since 0.9 every record may additionally carry the optional common
//! keys `trace_id` (string) and `worker` (number) — the request-scoped
//! context installed via [`Telemetry::set_trace`](crate::Telemetry::set_trace).
//! Both are optional-by-contract: pre-0.9 traces lack them, and
//! consumers must treat their absence as "no trace context".

use crate::json::Json;
use crate::sink::{EventCtx, TraceTag};
use crate::{StatsDelta, SCHEMA_VERSION};

/// The phases that open spans. One span per invocation: nested calls
/// (an `EU` inside a fair `EG` inside a witness construction) nest
/// their spans, and the profile aggregator attributes self time
/// accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// SMV parse + BDD compilation + load-time totality check.
    Compile,
    /// The reachability fixpoint.
    Reach,
    /// One `Check` evaluation of a specification (ENF dispatch).
    Check,
    /// A `CheckEU` least fixpoint (including the ring-recording variant).
    CheckEu,
    /// A `CheckEG` greatest fixpoint (no fairness).
    CheckEg,
    /// The fair-`EG` nested fixpoint (outer loop).
    FairEg,
    /// The post-fixpoint harvest pass that records the onion rings.
    FairRings,
    /// Witness / counterexample construction (Section 6).
    Witness,
    /// One static-analysis (lint) pass over a model.
    Lint,
}

/// Every span kind, for consumers that enumerate the taxonomy.
pub const SPAN_KINDS: [SpanKind; 9] = [
    SpanKind::Compile,
    SpanKind::Reach,
    SpanKind::Check,
    SpanKind::CheckEu,
    SpanKind::CheckEg,
    SpanKind::FairEg,
    SpanKind::FairRings,
    SpanKind::Witness,
    SpanKind::Lint,
];

impl SpanKind {
    /// The stable wire name (`"name"` key of span records).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compile => "compile",
            SpanKind::Reach => "reach",
            SpanKind::Check => "check",
            SpanKind::CheckEu => "check_eu",
            SpanKind::CheckEg => "check_eg",
            SpanKind::FairEg => "fair_eg",
            SpanKind::FairRings => "fair_rings",
            SpanKind::Witness => "witness",
            SpanKind::Lint => "lint",
        }
    }

    /// Inverse of [`name`](SpanKind::name).
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SPAN_KINDS.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which fixpoint loop an iteration event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixKind {
    /// The reachability frontier loop.
    Reach,
    /// A `CheckEU` frontier loop (plain or ring-recording).
    Eu,
    /// A `CheckEG` candidate loop.
    Eg,
    /// The outer gfp loop of fair `EG`.
    FairEgOuter,
}

impl FixKind {
    /// The stable wire name (`"phase"` key of iteration records).
    pub fn name(self) -> &'static str {
        match self {
            FixKind::Reach => "reach",
            FixKind::Eu => "eu",
            FixKind::Eg => "eg",
            FixKind::FairEgOuter => "fair_eg_outer",
        }
    }

    /// Inverse of [`name`](FixKind::name).
    pub fn from_name(name: &str) -> Option<FixKind> {
        [FixKind::Reach, FixKind::Eu, FixKind::Eg, FixKind::FairEgOuter]
            .into_iter()
            .find(|k| k.name() == name)
    }
}

impl std::fmt::Display for FixKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One telemetry event. See the module docs for the wire schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A phase opened.
    SpanStart {
        /// Span id, unique within one telemetry handle.
        id: u64,
        /// The phase.
        kind: SpanKind,
        /// Free-form annotation (e.g. the formula being checked).
        label: Option<String>,
    },
    /// A phase closed.
    SpanEnd {
        /// Span id matching the corresponding [`Event::SpanStart`].
        id: u64,
        /// The phase.
        kind: SpanKind,
        /// Wall time the span was open, in microseconds.
        wall_us: u64,
        /// Live nodes at close.
        live_nodes: u64,
        /// Node-pool high-water mark at close.
        peak_nodes: u64,
        /// Counter movement while the span was open.
        delta: StatsDelta,
    },
    /// One iteration of a governed fixpoint loop.
    FixpointIter {
        /// Which loop.
        phase: FixKind,
        /// 1-based iteration index.
        iteration: u64,
        /// BDD size of the frontier / newest ring.
        frontier_size: u64,
        /// BDD size of the current approximation.
        approx_size: u64,
        /// Live nodes after the iteration.
        live_nodes: u64,
        /// Node-pool high-water mark after the iteration.
        peak_nodes: u64,
        /// Computed-table lookups this iteration issued.
        d_lookups: u64,
        /// Computed-table hits this iteration scored.
        d_hits: u64,
    },
    /// The witness search hopped toward the nearest pending fairness
    /// constraint (Section 6 step 2).
    WitnessHop {
        /// Index of the chosen constraint.
        constraint: u64,
        /// Ring index hopped into — the constraint's EU distance.
        ring: u64,
    },
    /// A cycle-closure attempt resolved (Section 6 step 3).
    CycleClose {
        /// Did the closing arc exist?
        closed: bool,
        /// States on the closing arc (0 when not closed).
        arc_len: u64,
    },
    /// The witness search restarted from the frontier state, descending
    /// the SCC DAG (Figure 2); `count` doubles as the descent depth.
    Restart {
        /// Restart number (1-based) = SCC descent depth.
        count: u64,
        /// Did the stay-set strategy cut the attempt short?
        stay_exit: bool,
        /// The frontier state restarted from, as a bit string.
        frontier: String,
    },
    /// A garbage collection ran.
    Gc {
        /// Nodes reclaimed.
        reclaimed: u64,
        /// Live nodes before the collection.
        live_before: u64,
        /// Live nodes after the collection.
        live_after: u64,
        /// Wall time the collection took, in microseconds. Optional on
        /// the wire (absent in pre-0.6 traces, read back as 0).
        pause_us: u64,
    },
    /// A cadence-gated structural heap sample: the cheap (`O(levels)`)
    /// brief the manager can afford at fixpoint-iteration and GC
    /// checkpoints. Deep scans (probe histograms, sift gains) are
    /// on-demand only and never ride the event stream.
    HeapSample {
        /// Live nodes, terminals included.
        live_nodes: u64,
        /// Dead slots on the free list.
        free_nodes: u64,
        /// Level with the most nodes (ties to the upper level).
        widest_level: u64,
        /// Node count of that level.
        widest_width: u64,
        /// Total unique-table entries across every level.
        table_len: u64,
        /// Total unique-table slots across non-empty levels.
        table_slots: u64,
    },
    /// The governor's degradation ladder escalated one step.
    Ladder {
        /// `"gc"`, `"sift"` or `"cache_shrink"`.
        stage: &'static str,
    },
    /// The resource governor tripped.
    Trip {
        /// Human-readable trip reason.
        reason: String,
    },
    /// A static-analysis pass reported a diagnostic.
    Diagnostic {
        /// Stable diagnostic code (`E0xx` / `W0xx`).
        code: String,
        /// `"error"` or `"warning"`.
        severity: &'static str,
    },
}

use crate::json::esc;

impl Event {
    /// The record's `kind` key.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::FixpointIter { .. } => "fixpoint_iter",
            Event::WitnessHop { .. } => "witness_hop",
            Event::CycleClose { .. } => "cycle_close",
            Event::Restart { .. } => "restart",
            Event::Gc { .. } => "gc",
            Event::HeapSample { .. } => "heap_sample",
            Event::Ladder { .. } => "ladder",
            Event::Trip { .. } => "trip",
            Event::Diagnostic { .. } => "diagnostic",
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self, ctx: &EventCtx) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!("{{\"v\":{SCHEMA_VERSION},\"seq\":{},\"t_us\":{}", ctx.seq, ctx.t_us));
        if let Some(tag) = &ctx.trace {
            s.push_str(",\"trace_id\":\"");
            esc(&mut s, &tag.trace_id);
            s.push_str(&format!("\",\"worker\":{}", tag.worker));
        }
        s.push_str(&format!(",\"kind\":\"{}\"", self.kind_name()));
        match self {
            Event::SpanStart { id, kind, label } => {
                s.push_str(&format!(",\"span\":{id},\"name\":\"{}\"", kind.name()));
                if let Some(l) = label {
                    s.push_str(",\"label\":\"");
                    esc(&mut s, l);
                    s.push('"');
                }
            }
            Event::SpanEnd { id, kind, wall_us, live_nodes, peak_nodes, delta } => {
                s.push_str(&format!(
                    ",\"span\":{id},\"name\":\"{}\",\"wall_us\":{wall_us},\
                     \"live_nodes\":{live_nodes},\"peak_nodes\":{peak_nodes},\
                     \"d_created\":{},\"d_lookups\":{},\"d_hits\":{},\
                     \"d_evictions\":{},\"d_gc_runs\":{},\"d_gc_reclaimed\":{}",
                    kind.name(),
                    delta.created_nodes,
                    delta.cache_lookups,
                    delta.cache_hits,
                    delta.cache_evictions,
                    delta.gc_runs,
                    delta.gc_reclaimed,
                ));
            }
            Event::FixpointIter {
                phase,
                iteration,
                frontier_size,
                approx_size,
                live_nodes,
                peak_nodes,
                d_lookups,
                d_hits,
            } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"iteration\":{iteration},\
                     \"frontier_size\":{frontier_size},\"approx_size\":{approx_size},\
                     \"live_nodes\":{live_nodes},\"peak_nodes\":{peak_nodes},\
                     \"d_lookups\":{d_lookups},\"d_hits\":{d_hits}",
                    phase.name()
                ));
            }
            Event::WitnessHop { constraint, ring } => {
                s.push_str(&format!(",\"constraint\":{constraint},\"ring\":{ring}"));
            }
            Event::CycleClose { closed, arc_len } => {
                s.push_str(&format!(",\"closed\":{closed},\"arc_len\":{arc_len}"));
            }
            Event::Restart { count, stay_exit, frontier } => {
                s.push_str(&format!(
                    ",\"count\":{count},\"stay_exit\":{stay_exit},\"frontier\":\""
                ));
                esc(&mut s, frontier);
                s.push('"');
            }
            Event::Gc { reclaimed, live_before, live_after, pause_us } => {
                s.push_str(&format!(
                    ",\"reclaimed\":{reclaimed},\"live_before\":{live_before},\
                     \"live_after\":{live_after},\"pause_us\":{pause_us}"
                ));
            }
            Event::HeapSample {
                live_nodes,
                free_nodes,
                widest_level,
                widest_width,
                table_len,
                table_slots,
            } => {
                s.push_str(&format!(
                    ",\"live_nodes\":{live_nodes},\"free_nodes\":{free_nodes},\
                     \"widest_level\":{widest_level},\"widest_width\":{widest_width},\
                     \"table_len\":{table_len},\"table_slots\":{table_slots}"
                ));
            }
            Event::Ladder { stage } => {
                s.push_str(&format!(",\"stage\":\"{stage}\""));
            }
            Event::Trip { reason } => {
                s.push_str(",\"reason\":\"");
                esc(&mut s, reason);
                s.push('"');
            }
            Event::Diagnostic { code, severity } => {
                s.push_str(",\"code\":\"");
                esc(&mut s, code);
                s.push_str(&format!("\",\"severity\":\"{severity}\""));
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSON-lines record back into an event and its context.
    /// Returns `None` for malformed lines, unknown kinds or a schema
    /// version newer than this crate understands.
    pub fn from_json_line(line: &str) -> Option<(EventCtx, Event)> {
        let j = Json::parse(line)?;
        if j.get("v")?.as_u64()? > SCHEMA_VERSION {
            return None;
        }
        let mut ctx = EventCtx::new(j.get("seq")?.as_u64()?, j.get("t_us")?.as_u64()?);
        if let Some(id) = j.get("trace_id").and_then(Json::as_str) {
            ctx.trace = Some(TraceTag {
                trace_id: id.into(),
                worker: j.get("worker").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        let u = |key: &str| j.get(key).and_then(Json::as_u64);
        let event = match j.get("kind")?.as_str()? {
            "span_start" => Event::SpanStart {
                id: u("span")?,
                kind: SpanKind::from_name(j.get("name")?.as_str()?)?,
                label: j.get("label").and_then(Json::as_str).map(str::to_string),
            },
            "span_end" => Event::SpanEnd {
                id: u("span")?,
                kind: SpanKind::from_name(j.get("name")?.as_str()?)?,
                wall_us: u("wall_us")?,
                live_nodes: u("live_nodes")?,
                peak_nodes: u("peak_nodes")?,
                delta: StatsDelta {
                    created_nodes: u("d_created")?,
                    cache_lookups: u("d_lookups")?,
                    cache_hits: u("d_hits")?,
                    cache_evictions: u("d_evictions")?,
                    gc_runs: u("d_gc_runs")?,
                    gc_reclaimed: u("d_gc_reclaimed")?,
                },
            },
            "fixpoint_iter" => Event::FixpointIter {
                phase: FixKind::from_name(j.get("phase")?.as_str()?)?,
                iteration: u("iteration")?,
                frontier_size: u("frontier_size")?,
                approx_size: u("approx_size")?,
                live_nodes: u("live_nodes")?,
                peak_nodes: u("peak_nodes")?,
                d_lookups: u("d_lookups")?,
                d_hits: u("d_hits")?,
            },
            "witness_hop" => Event::WitnessHop { constraint: u("constraint")?, ring: u("ring")? },
            "cycle_close" => {
                Event::CycleClose { closed: j.get("closed")?.as_bool()?, arc_len: u("arc_len")? }
            }
            "restart" => Event::Restart {
                count: u("count")?,
                stay_exit: j.get("stay_exit")?.as_bool()?,
                frontier: j.get("frontier")?.as_str()?.to_string(),
            },
            "gc" => Event::Gc {
                reclaimed: u("reclaimed")?,
                live_before: u("live_before")?,
                live_after: u("live_after")?,
                pause_us: u("pause_us").unwrap_or(0),
            },
            "heap_sample" => Event::HeapSample {
                live_nodes: u("live_nodes")?,
                free_nodes: u("free_nodes")?,
                widest_level: u("widest_level")?,
                widest_width: u("widest_width")?,
                table_len: u("table_len")?,
                table_slots: u("table_slots")?,
            },
            "ladder" => Event::Ladder {
                stage: match j.get("stage")?.as_str()? {
                    "gc" => "gc",
                    "sift" => "sift",
                    "cache_shrink" => "cache_shrink",
                    _ => return None,
                },
            },
            "trip" => Event::Trip { reason: j.get("reason")?.as_str()?.to_string() },
            "diagnostic" => Event::Diagnostic {
                code: j.get("code")?.as_str()?.to_string(),
                severity: match j.get("severity")?.as_str()? {
                    "error" => "error",
                    "warning" => "warning",
                    _ => return None,
                },
            },
            _ => return None,
        };
        Some((ctx, event))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip(event: Event) {
        let ctx = EventCtx::new(7, 1234);
        let line = event.to_json_line(&ctx);
        let (ctx2, back) =
            Event::from_json_line(&line).unwrap_or_else(|| panic!("unparseable line: {line}"));
        assert_eq!((ctx2.seq, ctx2.t_us), (7, 1234), "{line}");
        assert_eq!(ctx2.trace, None, "{line}");
        assert_eq!(back, event, "{line}");
    }

    #[test]
    fn trace_context_round_trips_and_is_optional() {
        let event = Event::WitnessHop { constraint: 2, ring: 5 };
        let tagged = EventCtx::new(9, 88).with_trace("deadbeef01234567".into(), 3);
        let line = event.to_json_line(&tagged);
        assert!(line.contains("\"trace_id\":\"deadbeef01234567\""), "{line}");
        assert!(line.contains("\"worker\":3"), "{line}");
        let (ctx, back) = Event::from_json_line(&line).unwrap();
        assert_eq!(ctx, tagged, "{line}");
        assert_eq!(back, event);
        // Untagged lines (every pre-0.9 trace) still parse, trace-less.
        let (plain, _) = Event::from_json_line(&event.to_json_line(&EventCtx::new(9, 88))).unwrap();
        assert_eq!(plain.trace, None);
    }

    #[test]
    fn every_event_kind_round_trips() {
        roundtrip(Event::SpanStart { id: 3, kind: SpanKind::Compile, label: None });
        roundtrip(Event::SpanStart {
            id: 4,
            kind: SpanKind::Check,
            label: Some("AG \"x\" \\ y".into()),
        });
        roundtrip(Event::SpanEnd {
            id: 3,
            kind: SpanKind::FairRings,
            wall_us: 99,
            live_nodes: 1000,
            peak_nodes: 2000,
            delta: StatsDelta {
                created_nodes: 1,
                cache_lookups: 2,
                cache_hits: 3,
                cache_evictions: 4,
                gc_runs: 5,
                gc_reclaimed: 6,
            },
        });
        roundtrip(Event::FixpointIter {
            phase: FixKind::FairEgOuter,
            iteration: 12,
            frontier_size: 34,
            approx_size: 56,
            live_nodes: 78,
            peak_nodes: 90,
            d_lookups: 11,
            d_hits: 10,
        });
        roundtrip(Event::WitnessHop { constraint: 2, ring: 5 });
        roundtrip(Event::CycleClose { closed: true, arc_len: 7 });
        roundtrip(Event::Restart { count: 1, stay_exit: true, frontier: "0101".into() });
        roundtrip(Event::Gc { reclaimed: 100, live_before: 300, live_after: 200, pause_us: 42 });
        roundtrip(Event::HeapSample {
            live_nodes: 120,
            free_nodes: 8,
            widest_level: 3,
            widest_width: 40,
            table_len: 118,
            table_slots: 256,
        });
        roundtrip(Event::Ladder { stage: "cache_shrink" });
        roundtrip(Event::Trip { reason: "deadline expired after 1s".into() });
        roundtrip(Event::Diagnostic { code: "W010".into(), severity: "warning" });
    }

    #[test]
    fn span_names_are_bijective() {
        for kind in SPAN_KINDS {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }
}
