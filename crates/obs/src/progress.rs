//! The live progress line (`--progress`): a single self-overwriting
//! status line showing which phase is running, its current iteration
//! and the node pressure, plus full lines for notable one-off events
//! (restarts, governor trips).

use std::io::Write;

use crate::{Event, EventCtx, Sink};

/// Renders a `\r`-overwritten progress line on a terminal-ish writer
/// (stderr in the CLI). The line is cleared on flush so it leaves no
/// residue in the final output.
pub struct ProgressSink<W: Write> {
    out: W,
    /// Width of the last painted line, so shorter repaints fully erase it.
    last_len: usize,
    /// Name of the innermost open span, for the line's `[phase]` tag.
    phase: Vec<&'static str>,
    /// Maximum painted line width; longer lines are truncated with an
    /// ellipsis so a self-overwriting line never wraps (wrapped lines
    /// cannot be erased with `\r`).
    max_width: usize,
}

/// Default line-width cap — a conservative terminal width.
const DEFAULT_WIDTH: usize = 120;

impl<W: Write> ProgressSink<W> {
    /// Wraps a writer with the default 120-column width cap.
    pub fn new(out: W) -> ProgressSink<W> {
        ProgressSink { out, last_len: 0, phase: Vec::new(), max_width: DEFAULT_WIDTH }
    }

    /// Overrides the line-width cap (minimum 2: one character plus the
    /// ellipsis).
    pub fn with_width(mut self, max_width: usize) -> ProgressSink<W> {
        self.max_width = max_width.max(2);
        self
    }

    fn paint(&mut self, line: &str) {
        let line = truncate(line, self.max_width);
        let pad = self.last_len.saturating_sub(line.chars().count());
        let mut buf = String::with_capacity(1 + line.len() + pad);
        buf.push('\r');
        buf.push_str(&line);
        buf.extend(std::iter::repeat_n(' ', pad));
        self.emit(&buf);
        self.last_len = line.chars().count().max(self.last_len);
    }

    /// A durable full line: clears the progress line, prints, newline.
    fn announce(&mut self, line: &str) {
        let mut buf = String::with_capacity(self.last_len + 2 + line.len() + 1);
        push_clear(&mut buf, self.last_len);
        self.last_len = 0;
        buf.push_str(line);
        buf.push('\n');
        self.emit(&buf);
    }

    fn clear(&mut self) {
        if self.last_len > 0 {
            let mut buf = String::with_capacity(self.last_len + 2);
            push_clear(&mut buf, self.last_len);
            self.last_len = 0;
            self.emit(&buf);
        }
    }

    /// One `write_all` syscall per rendered line: sinks owned by several
    /// worker sessions may share one terminal, and a line emitted as a
    /// single write cannot be torn apart by a concurrent writer the way
    /// a `write!`-fragmented one can.
    fn emit(&mut self, buf: &str) {
        let _ = self.out.write_all(buf.as_bytes());
        let _ = self.out.flush();
    }
}

/// Appends the erase-the-previous-line sequence (`\r`, spaces, `\r`).
fn push_clear(buf: &mut String, last_len: usize) {
    if last_len > 0 {
        buf.push('\r');
        buf.extend(std::iter::repeat_n(' ', last_len));
        buf.push('\r');
    }
}

/// Caps `line` at `max` characters, ellipsis-terminated when cut.
fn truncate(line: &str, max: usize) -> std::borrow::Cow<'_, str> {
    if line.chars().count() <= max {
        return std::borrow::Cow::Borrowed(line);
    }
    let kept: String = line.chars().take(max.saturating_sub(1)).collect();
    std::borrow::Cow::Owned(format!("{kept}\u{2026}"))
}

impl ProgressSink<std::io::Stderr> {
    /// The standard CLI configuration: paint on stderr.
    pub fn stderr() -> ProgressSink<std::io::Stderr> {
        ProgressSink::new(std::io::stderr())
    }
}

impl<W: Write> Sink for ProgressSink<W> {
    fn record(&mut self, _ctx: &EventCtx, event: &Event) {
        match event {
            Event::SpanStart { kind, .. } => {
                self.phase.push(kind.name());
                let line = format!("[{}] ...", kind.name());
                self.paint(&line);
            }
            Event::SpanEnd { .. } => {
                self.phase.pop();
            }
            Event::FixpointIter {
                phase,
                iteration,
                frontier_size,
                approx_size,
                live_nodes,
                ..
            } => {
                let line = format!(
                    "[{}] iter {iteration} frontier={frontier_size} approx={approx_size} live={live_nodes}",
                    phase.name()
                );
                self.paint(&line);
            }
            Event::WitnessHop { constraint, ring } => {
                let line = format!(
                    "[{}] hop to constraint {constraint} at distance {ring}",
                    self.phase.last().copied().unwrap_or("witness")
                );
                self.paint(&line);
            }
            Event::Restart { count, stay_exit, .. } => {
                let how = if *stay_exit { "stay-set exit" } else { "cycle would not close" };
                self.announce(&format!("[witness] restart {count} ({how})"));
            }
            Event::Trip { reason } => {
                self.announce(&format!("[governor] trip: {reason}"));
            }
            Event::Diagnostic { code, severity } => {
                self.announce(&format!("[lint] {severity} {code}"));
            }
            Event::Gc { .. }
            | Event::Ladder { .. }
            | Event::CycleClose { .. }
            | Event::HeapSample { .. } => {}
        }
    }

    fn flush(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{FixKind, SpanKind};

    #[test]
    fn paints_iterations_and_clears_on_flush() {
        let mut sink = ProgressSink::new(Vec::new());
        let ctx = EventCtx::new(0, 0);
        sink.record(&ctx, &Event::SpanStart { id: 1, kind: SpanKind::Reach, label: None });
        sink.record(
            &ctx,
            &Event::FixpointIter {
                phase: FixKind::Reach,
                iteration: 3,
                frontier_size: 12,
                approx_size: 40,
                live_nodes: 100,
                peak_nodes: 120,
                d_lookups: 5,
                d_hits: 2,
            },
        );
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.contains("[reach] iter 3 frontier=12"), "{text:?}");
        // The final clear leaves the cursor on an erased line.
        assert!(text.ends_with('\r'), "{text:?}");
    }

    #[test]
    fn restarts_become_durable_lines() {
        let mut sink = ProgressSink::new(Vec::new());
        let ctx = EventCtx::new(0, 0);
        sink.record(&ctx, &Event::Restart { count: 2, stay_exit: true, frontier: "01".into() });
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.contains("restart 2 (stay-set exit)\n"), "{text:?}");
    }

    #[test]
    fn long_lines_truncate_at_the_width_cap() {
        let mut sink = ProgressSink::new(Vec::new()).with_width(20);
        let ctx = EventCtx::new(0, 0);
        sink.record(
            &ctx,
            &Event::FixpointIter {
                phase: FixKind::FairEgOuter,
                iteration: 123456,
                frontier_size: 999_999_999,
                approx_size: 888_888_888,
                live_nodes: 777_777_777,
                peak_nodes: 0,
                d_lookups: 0,
                d_hits: 0,
            },
        );
        let text = String::from_utf8(sink.out).unwrap();
        let line = text.trim_start_matches('\r');
        assert_eq!(line.chars().count(), 20, "{line:?}");
        assert!(line.ends_with('\u{2026}'), "{line:?}");
        assert!(line.starts_with("[fair_eg_outer]"), "{line:?}");
    }

    #[test]
    fn short_lines_pass_through_untruncated() {
        let mut sink = ProgressSink::new(Vec::new());
        let ctx = EventCtx::new(0, 0);
        sink.record(&ctx, &Event::WitnessHop { constraint: 1, ring: 4 });
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.contains("hop to constraint 1 at distance 4"), "{text:?}");
        assert!(!text.contains('\u{2026}'), "{text:?}");
    }

    #[test]
    fn nested_spans_tag_with_the_innermost_phase() {
        let mut sink = ProgressSink::new(Vec::new());
        let ctx = EventCtx::new(0, 0);
        sink.record(&ctx, &Event::SpanStart { id: 1, kind: SpanKind::Witness, label: None });
        sink.record(&ctx, &Event::SpanStart { id: 2, kind: SpanKind::CheckEu, label: None });
        // Inside the EU span a hop tags with the innermost phase.
        sink.record(&ctx, &Event::WitnessHop { constraint: 0, ring: 2 });
        let inner = String::from_utf8(sink.out.clone()).unwrap();
        assert!(inner.contains("[check_eu] hop"), "{inner:?}");
        // After the inner span closes, the outer tag is restored.
        sink.record(
            &ctx,
            &Event::SpanEnd {
                id: 2,
                kind: SpanKind::CheckEu,
                wall_us: 1,
                live_nodes: 0,
                peak_nodes: 0,
                delta: Default::default(),
            },
        );
        sink.record(&ctx, &Event::WitnessHop { constraint: 0, ring: 1 });
        let outer = String::from_utf8(sink.out.clone()).unwrap();
        assert!(outer.contains("[witness] hop"), "{outer:?}");
    }

    /// A writer that records the byte span of every individual
    /// `write` call, so tests can assert syscall granularity.
    #[derive(Default)]
    struct CallRecorder {
        calls: Vec<Vec<u8>>,
    }

    impl Write for CallRecorder {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls.push(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_rendered_line_is_a_single_write_call() {
        let mut sink = ProgressSink::new(CallRecorder::default());
        let ctx = EventCtx::new(0, 0);
        // A paint, a repaint, and a durable announce: each must reach
        // the writer as exactly one write call, so concurrent workers
        // sharing a terminal can never tear a line. (The final flush
        // writes nothing — the announce already erased the paint.)
        sink.record(&ctx, &Event::SpanStart { id: 1, kind: SpanKind::Reach, label: None });
        sink.record(
            &ctx,
            &Event::FixpointIter {
                phase: FixKind::Reach,
                iteration: 1,
                frontier_size: 2,
                approx_size: 3,
                live_nodes: 4,
                peak_nodes: 5,
                d_lookups: 0,
                d_hits: 0,
            },
        );
        sink.record(&ctx, &Event::Trip { reason: "deadline expired".into() });
        sink.flush();
        let calls = &sink.out.calls;
        assert_eq!(calls.len(), 3, "one write per rendered line: {calls:?}");
        for call in calls {
            let text = String::from_utf8(call.clone()).unwrap();
            assert!(
                text.starts_with('\r') || text.ends_with('\n'),
                "every write is a whole repaint or a whole durable line: {text:?}"
            );
        }
        // The announce carries its erase sequence and the durable line
        // in the same write.
        let announce = String::from_utf8(calls[2].clone()).unwrap();
        assert!(announce.starts_with('\r'), "{announce:?}");
        assert!(announce.ends_with("deadline expired\n"), "{announce:?}");
    }

    #[test]
    fn governor_trips_paint_durable_exit3_lines() {
        let mut sink = ProgressSink::new(Vec::new());
        let ctx = EventCtx::new(0, 0);
        sink.record(&ctx, &Event::SpanStart { id: 1, kind: SpanKind::Reach, label: None });
        sink.record(&ctx, &Event::Trip { reason: "deadline expired after 10ms".into() });
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        // The trip line is durable (ends in a newline, survives the
        // flush-clear) and names the reason the CLI exits 3 for.
        assert!(text.contains("[governor] trip: deadline expired after 10ms\n"), "{text:?}");
    }
}
