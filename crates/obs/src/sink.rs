//! The sink abstraction and the JSON-lines trace writer.

use std::io::Write;
use std::sync::Arc;

use crate::Event;

/// Request-scoped trace context: which request (and which worker) the
/// events of a telemetry handle belong to. Installed once per job via
/// [`Telemetry::set_trace`](crate::Telemetry::set_trace) and stamped
/// into every subsequent [`EventCtx`] — the correlation key that lets
/// one grep tie a serve response to its full event stream. The id is an
/// `Arc<str>` so per-event stamping is a pointer copy, not a string
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTag {
    /// The request's trace id (client-supplied or derived from the
    /// source key + sequence number).
    pub trace_id: Arc<str>,
    /// The worker slot the job ran on.
    pub worker: u64,
}

/// Per-event context stamped by the [`Telemetry`](crate::Telemetry)
/// handle: a monotonic sequence number, the microsecond offset from
/// handle creation, and (when a trace context is installed) the
/// request's [`TraceTag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCtx {
    /// Monotonic per-handle sequence number, starting at 0.
    pub seq: u64,
    /// Microseconds since the telemetry handle was created.
    pub t_us: u64,
    /// The request this event belongs to, when known.
    pub trace: Option<TraceTag>,
}

impl EventCtx {
    /// A context with no trace tag (the pre-tracing shape).
    pub fn new(seq: u64, t_us: u64) -> EventCtx {
        EventCtx { seq, t_us, trace: None }
    }

    /// Attaches a trace tag.
    pub fn with_trace(mut self, trace_id: Arc<str>, worker: u64) -> EventCtx {
        self.trace = Some(TraceTag { trace_id, worker });
        self
    }
}

/// A consumer of telemetry events. Sinks are owned by the telemetry
/// handle and invoked synchronously, in attachment order, under the
/// handle's sink lock (so a sink never sees two concurrent `record`
/// calls). Attachment requires `Send` — the handle may ride a checking
/// session onto a worker thread.
pub trait Sink {
    /// Receives one event.
    fn record(&mut self, ctx: &EventCtx, event: &Event);

    /// Final drain; called once by [`Telemetry::flush`](crate::Telemetry::flush).
    fn flush(&mut self) {}
}

/// Writes each event as one JSON line (see [`Event`] for the schema).
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer. Lines are written eagerly; buffer the writer
    /// yourself if throughput matters.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file at `path`, buffered.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the file.
    pub fn create(path: &str) -> std::io::Result<JsonlSink<std::io::BufWriter<std::fs::File>>> {
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, ctx: &EventCtx, event: &Event) {
        // Telemetry must never abort the checking run; a full disk
        // silently truncates the trace instead.
        let _ = writeln!(self.out, "{}", event.to_json_line(ctx));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}
