//! The sink abstraction and the JSON-lines trace writer.

use std::io::Write;

use crate::Event;

/// Per-event context stamped by the [`Telemetry`](crate::Telemetry)
/// handle: a monotonic sequence number and the microsecond offset from
/// handle creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCtx {
    /// Monotonic per-handle sequence number, starting at 0.
    pub seq: u64,
    /// Microseconds since the telemetry handle was created.
    pub t_us: u64,
}

/// A consumer of telemetry events. Sinks are owned by the telemetry
/// handle and invoked synchronously, in attachment order, under the
/// handle's sink lock (so a sink never sees two concurrent `record`
/// calls). Attachment requires `Send` — the handle may ride a checking
/// session onto a worker thread.
pub trait Sink {
    /// Receives one event.
    fn record(&mut self, ctx: &EventCtx, event: &Event);

    /// Final drain; called once by [`Telemetry::flush`](crate::Telemetry::flush).
    fn flush(&mut self) {}
}

/// Writes each event as one JSON line (see [`Event`] for the schema).
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer. Lines are written eagerly; buffer the writer
    /// yourself if throughput matters.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file at `path`, buffered.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the file.
    pub fn create(path: &str) -> std::io::Result<JsonlSink<std::io::BufWriter<std::fs::File>>> {
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, ctx: &EventCtx, event: &Event) {
        // Telemetry must never abort the checking run; a full disk
        // silently truncates the trace instead.
        let _ = writeln!(self.out, "{}", event.to_json_line(ctx));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}
