#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! # smc-obs — structured telemetry for the checking stack
//!
//! A zero-cost-when-disabled observability layer: phases of a
//! model-checking run open [`SpanKind`] **spans** (compile, reach, the
//! CTL fixpoints, fair-ring computation, witness construction) and emit
//! **events** ([`Event`]) for per-iteration fixpoint telemetry, the
//! Section 6 witness search's decisions (nearest-constraint hops,
//! cycle-closure attempts, SCC-descent restarts), garbage collection,
//! degradation-ladder steps and governor trips.
//!
//! The [`Telemetry`] handle is the only type the instrumented layers
//! touch. Disabled (the default) it is a `None` behind one pointer:
//! every emit is a single predictable branch, no clock is read, no BDD
//! is sized. Enabled, it fans events out to any number of [`Sink`]s:
//!
//! - [`JsonlSink`] — a versioned JSON-lines trace (see the schema
//!   contract on [`Event`]),
//! - [`ProgressSink`] — a live one-line progress display for stderr,
//! - [`ProfileAggregator`] — an in-memory aggregator rendering a
//!   post-run profile report (wall/self time, iterations, peak nodes,
//!   cache hit rate per span).
//!
//! This crate is dependency-free (std only) so it can sit *below*
//! `smc-bdd`: the BDD manager itself carries a `Telemetry` handle, and
//! every layer above reaches it through the manager.
//!
//! ## Example
//!
//! ```
//! use smc_obs::{Event, JsonlSink, SpanKind, StatsSnapshot, Telemetry};
//!
//! let tele = Telemetry::new();
//! tele.add_sink(Box::new(JsonlSink::new(Vec::new())));
//! let span = tele.span_start(SpanKind::Reach, None, StatsSnapshot::default());
//! tele.emit(Event::WitnessHop { constraint: 0, ring: 3 });
//! tele.span_end(span, StatsSnapshot::default());
//! tele.flush();
//! ```

mod event;
mod export;
mod heap;
mod json;
mod ledger;
mod metrics;
mod profile;
mod progress;
mod recorder;
mod sink;

pub use event::{Event, FixKind, SpanKind, SPAN_KINDS};
pub use export::{export_chrome, export_speedscope};
pub use heap::{
    HeapCacheOp, HeapComputed, HeapLevel, HeapSnapshot, HeapUnique, HeapWidest, SiftGain,
    HEAP_SAMPLE_CADENCE, HEAP_SCHEMA_VERSION, HEAP_SNAPSHOT_KEYS,
};
pub use json::Json;
pub use ledger::{FamilyRecord, Ledger, PhaseRecord, RunRecord, LEDGER_SCHEMA_VERSION};
pub use metrics::{metric_help, Metrics, METRICS_SCHEMA_VERSION};
pub use profile::{report_from_jsonl, report_from_jsonl_with, ProfileAggregator};
pub use progress::ProgressSink;
pub use recorder::{DumpMeta, Recorder, DEFAULT_RECORDER_CAP, DUMP_SCHEMA_VERSION};
pub use sink::{EventCtx, JsonlSink, Sink, TraceTag};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Locks a mutex, recovering the data from a poisoned lock: a sink that
/// panicked mid-record must not take the whole telemetry pipeline (and
/// every other worker thread sharing it) down with it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Version stamped into every JSON-lines record as `"v"`. Bumped only
/// when a required key is removed or changes meaning; adding optional
/// keys is a compatible change (see DESIGN.md §8).
pub const SCHEMA_VERSION: u64 = 1;

/// Version stamped into every live-introspection snapshot (`/status`
/// over HTTP and the in-band `{"op":"status"}` serve request) as
/// `"status_schema"`. The key vocabulary below is append-only: fields
/// may be added at any time, but removing or re-typing one bumps this.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Required top-level keys of a status snapshot (append-only contract;
/// pinned by the golden test in `tests/schema.rs`).
pub const STATUS_REQUIRED_KEYS: &[&str] = &[
    "status_schema",
    "draining",
    "queue_depth",
    "in_flight",
    "served",
    "rejected",
    "workers",
    "quarantine",
    "cache",
];

/// Required keys of each entry in the status `workers` array.
/// `live_nodes` / `widest_level` carry the worker's latest heap sample
/// (0 until its job emits one) — an append-only addition.
pub const STATUS_WORKER_KEYS: &[&str] =
    &["slot", "name", "trace_id", "elapsed_us", "phase", "live_nodes", "widest_level"];

/// Required keys of each entry in the status `quarantine` array.
pub const STATUS_QUARANTINE_KEYS: &[&str] = &["source", "strikes", "diagnostic"];

/// A point-in-time copy of the BDD manager's workload counters, taken at
/// span boundaries so every span carries the *delta* of cache traffic,
/// allocation and GC work it caused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Live (unique-table) nodes right now.
    pub live_nodes: u64,
    /// High-water mark of the node pool.
    pub peak_nodes: u64,
    /// Total nodes ever created.
    pub created_nodes: u64,
    /// Computed-table lookups (all operations).
    pub cache_lookups: u64,
    /// Computed-table hits (all operations).
    pub cache_hits: u64,
    /// Computed-table evictions.
    pub cache_evictions: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection.
    pub gc_reclaimed: u64,
}

/// The change in cumulative counters between two [`StatsSnapshot`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Nodes created within the span.
    pub created_nodes: u64,
    /// Computed-table lookups within the span.
    pub cache_lookups: u64,
    /// Computed-table hits within the span.
    pub cache_hits: u64,
    /// Computed-table evictions within the span.
    pub cache_evictions: u64,
    /// Garbage collections within the span.
    pub gc_runs: u64,
    /// Nodes reclaimed within the span.
    pub gc_reclaimed: u64,
}

impl StatsSnapshot {
    /// Counter movement since `since`. Saturating: a transaction
    /// rollback can make `created_nodes` step backwards briefly.
    pub fn delta_since(&self, since: &StatsSnapshot) -> StatsDelta {
        StatsDelta {
            created_nodes: self.created_nodes.saturating_sub(since.created_nodes),
            cache_lookups: self.cache_lookups.saturating_sub(since.cache_lookups),
            cache_hits: self.cache_hits.saturating_sub(since.cache_hits),
            cache_evictions: self.cache_evictions.saturating_sub(since.cache_evictions),
            gc_runs: self.gc_runs.saturating_sub(since.gc_runs),
            gc_reclaimed: self.gc_reclaimed.saturating_sub(since.gc_reclaimed),
        }
    }
}

/// Opaque handle to an open span, returned by [`Telemetry::span_start`]
/// and consumed by [`Telemetry::span_end`]. The zero id is the "no span"
/// sentinel a disabled telemetry hands out, so disabled span bookkeeping
/// is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The sentinel returned when telemetry is disabled.
    pub const NONE: SpanId = SpanId(0);
}

struct OpenSpan {
    id: u64,
    kind: SpanKind,
    t_us: u64,
    at: StatsSnapshot,
}

struct Inner {
    start: Instant,
    sinks: Mutex<Vec<Box<dyn Sink + Send>>>,
    seq: AtomicU64,
    next_span: AtomicU64,
    stack: Mutex<Vec<OpenSpan>>,
    metrics: Mutex<Metrics>,
    /// Request-scoped context stamped into every event, when installed.
    trace: Mutex<Option<TraceTag>>,
}

/// The telemetry handle threaded through the checking stack.
///
/// Cloning is cheap (an `Option<Arc>`); all clones share the same sinks,
/// clock and span stack. The handle is `Send + Sync`, so a whole
/// checking session (BDD manager included) can move to a worker thread.
/// Each parallel session should own its **own** handle — the span stack
/// is shared per handle, so interleaving spans from concurrent sessions
/// through one handle would mispair them. The default handle is
/// **disabled**: every method is a no-op behind a single
/// [`enabled`](Telemetry::enabled) branch, so instrumentation left in
/// hot paths costs one predictable branch per call site. Hot loops
/// should guard any data gathering (BDD sizing, stats snapshots) behind
/// `enabled()` themselves.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => {
                write!(f, "Telemetry(enabled, {} events)", i.seq.load(Ordering::Relaxed))
            }
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// An enabled handle with no sinks yet (attach with
    /// [`add_sink`](Telemetry::add_sink)). The trace clock starts here.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                sinks: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
                metrics: Mutex::new(Metrics::disabled()),
                trace: Mutex::new(None),
            })),
        }
    }

    /// The disabled (no-op) handle; same as `Telemetry::default()`.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Is any sink attached to an enabled handle going to see events?
    /// The fast guard for hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a sink. No-op on a disabled handle.
    pub fn add_sink(&self, sink: Box<dyn Sink + Send>) {
        if let Some(inner) = &self.inner {
            lock(&inner.sinks).push(sink);
        }
    }

    /// Attaches a metrics registry: every subsequent event folds into it
    /// ([`Metrics::fold_event`]), and instrumented layers can reach it
    /// through [`metrics`](Telemetry::metrics) for direct recording.
    /// No-op on a disabled handle.
    pub fn set_metrics(&self, metrics: Metrics) {
        if let Some(inner) = &self.inner {
            *lock(&inner.metrics) = metrics;
        }
    }

    /// The attached metrics registry handle (a cheap clone sharing the
    /// same registry), or a disabled handle when none is attached.
    pub fn metrics(&self) -> Metrics {
        match &self.inner {
            Some(inner) => lock(&inner.metrics).clone(),
            None => Metrics::disabled(),
        }
    }

    /// Installs a request-scoped trace context: every subsequent event
    /// carries `trace_id` + `worker` in its [`EventCtx`] (and on the
    /// JSON-lines wire as optional keys — a schema-compatible addition).
    /// No-op on a disabled handle. Install before the job starts; the
    /// per-event cost afterwards is one `Arc` clone.
    pub fn set_trace(&self, trace_id: &str, worker: u64) {
        if let Some(inner) = &self.inner {
            *lock(&inner.trace) = Some(TraceTag { trace_id: Arc::from(trace_id), worker });
        }
    }

    /// Emits one event to every sink, stamping sequence number and
    /// microseconds since the handle was created.
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        inner.record(&event);
    }

    /// Opens a span: emits [`Event::SpanStart`] and remembers the start
    /// time and stats snapshot so [`span_end`](Telemetry::span_end) can
    /// report wall time and counter deltas. Returns [`SpanId::NONE`]
    /// when disabled. `at` should be the manager's counters right now;
    /// callers on hot paths should only compute it when
    /// [`enabled`](Telemetry::enabled).
    pub fn span_start(&self, kind: SpanKind, label: Option<&str>, at: StatsSnapshot) -> SpanId {
        let Some(inner) = &self.inner else { return SpanId::NONE };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let t_us = inner.now_us();
        lock(&inner.stack).push(OpenSpan { id, kind, t_us, at });
        inner.record(&Event::SpanStart { id, kind, label: label.map(str::to_string) });
        SpanId(id)
    }

    /// Closes a span: emits [`Event::SpanEnd`] with the wall time and
    /// the stats delta since the matching [`span_start`](Telemetry::span_start).
    /// Spans abandoned by an error path between `id` and the top of the
    /// stack are closed too (with the same end snapshot), so the stack
    /// stays balanced even when a fixpoint trips mid-flight.
    pub fn span_end(&self, id: SpanId, at: StatsSnapshot) {
        let Some(inner) = &self.inner else { return };
        if id == SpanId::NONE {
            return;
        }
        let now = inner.now_us();
        loop {
            let Some(open) = lock(&inner.stack).pop() else { return };
            inner.record(&Event::SpanEnd {
                id: open.id,
                kind: open.kind,
                wall_us: now.saturating_sub(open.t_us),
                live_nodes: at.live_nodes,
                peak_nodes: at.peak_nodes,
                delta: at.delta_since(&open.at),
            });
            if open.id == id.0 {
                return;
            }
        }
    }

    /// Flushes every sink (progress lines are cleared, trace files
    /// drained to disk). Call once at the end of a run.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in lock(&inner.sinks).iter_mut() {
                sink.flush();
            }
        }
    }
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn record(&self, event: &Event) {
        // The sink lock is taken before the sequence number is drawn, so
        // concurrent emitters through one shared handle produce strictly
        // seq-ordered trace lines (no torn ordering in the JSONL file).
        let mut sinks = lock(&self.sinks);
        let ctx = EventCtx {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.now_us(),
            trace: lock(&self.trace).clone(),
        };
        lock(&self.metrics).fold_event(event);
        for sink in sinks.iter_mut() {
            sink.record(&ctx, event);
        }
    }
}

/// Tracks per-iteration cache-counter deltas for a fixpoint loop:
/// holds the previous iteration's snapshot so each
/// [`Event::FixpointIter`] reports the traffic of *that* iteration, not
/// the cumulative totals.
#[derive(Debug)]
pub struct IterTracker {
    last: StatsSnapshot,
}

impl IterTracker {
    /// Starts tracking from `at` (the counters just before iteration 1).
    pub fn new(at: StatsSnapshot) -> IterTracker {
        IterTracker { last: at }
    }

    /// Builds one iteration event and advances the tracker to `at`.
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        &mut self,
        phase: FixKind,
        iteration: u64,
        frontier_size: u64,
        approx_size: u64,
        at: StatsSnapshot,
    ) -> Event {
        let d = at.delta_since(&self.last);
        self.last = at;
        Event::FixpointIter {
            phase,
            iteration,
            frontier_size,
            approx_size,
            live_nodes: at.live_nodes,
            peak_nodes: at.peak_nodes,
            d_lookups: d.cache_lookups,
            d_hits: d.cache_hits,
        }
    }
}

/// Compile-time `Send`/`Sync` assertions for the session types: the
/// parallel engine moves whole checking sessions (telemetry handle
/// included) onto worker threads and shares one metrics registry across
/// the fleet, so these bounds are part of this crate's public contract.
/// A regression (an `Rc` or `RefCell` reintroduced anywhere inside)
/// fails compilation here rather than at a distant spawn site.
#[allow(dead_code)]
mod send_assertions {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    fn session_types_are_send_and_sync() {
        assert_send::<crate::Telemetry>();
        assert_sync::<crate::Telemetry>();
        assert_send::<crate::Metrics>();
        assert_sync::<crate::Metrics>();
        assert_send::<crate::ProfileAggregator>();
        assert_sync::<crate::ProfileAggregator>();
        assert_send::<crate::JsonlSink<std::io::Sink>>();
        assert_send::<crate::ProgressSink<std::io::Stderr>>();
        assert_send::<Box<dyn crate::Sink + Send>>();
        assert_send::<crate::Recorder>();
        assert_sync::<crate::Recorder>();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::io::Write;

    /// A Write that appends into a shared buffer, so tests can read what
    /// a sink owned by the telemetry wrote.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        /// The accumulated bytes, copied out.
        pub(crate) fn contents(&self) -> Vec<u8> {
            lock(&self.0).clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tele = Telemetry::disabled();
        assert!(!tele.enabled());
        let span = tele.span_start(SpanKind::Reach, None, StatsSnapshot::default());
        assert_eq!(span, SpanId::NONE);
        tele.emit(Event::WitnessHop { constraint: 0, ring: 1 });
        tele.span_end(span, StatsSnapshot::default());
        tele.flush();
    }

    #[test]
    fn spans_report_wall_and_deltas() {
        let buf = SharedBuf::default();
        let tele = Telemetry::new();
        tele.add_sink(Box::new(JsonlSink::new(buf.clone())));
        let start = StatsSnapshot { cache_lookups: 10, cache_hits: 4, ..Default::default() };
        let end = StatsSnapshot {
            cache_lookups: 110,
            cache_hits: 54,
            live_nodes: 7,
            ..Default::default()
        };
        let span = tele.span_start(SpanKind::CheckEu, Some("E[a U b]"), start);
        tele.span_end(span, end);
        tele.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[0].contains("\"label\":\"E[a U b]\""));
        assert!(lines[1].contains("\"kind\":\"span_end\""));
        assert!(lines[1].contains("\"d_lookups\":100"));
        assert!(lines[1].contains("\"d_hits\":50"));
        assert!(lines[1].contains("\"live_nodes\":7"));
    }

    #[test]
    fn abandoned_inner_spans_are_closed() {
        let buf = SharedBuf::default();
        let tele = Telemetry::new();
        tele.add_sink(Box::new(JsonlSink::new(buf.clone())));
        let outer = tele.span_start(SpanKind::FairEg, None, StatsSnapshot::default());
        let _inner = tele.span_start(SpanKind::CheckEu, None, StatsSnapshot::default());
        // Error path: the inner span was never ended explicitly.
        tele.span_end(outer, StatsSnapshot::default());
        tele.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        let ends = text.lines().filter(|l| l.contains("span_end")).count();
        assert_eq!(ends, 2, "both spans must be closed: {text}");
    }

    #[test]
    fn iter_tracker_reports_per_iteration_deltas() {
        let mut tr = IterTracker::new(StatsSnapshot { cache_lookups: 5, ..Default::default() });
        let e1 = tr.event(
            FixKind::Reach,
            1,
            3,
            3,
            StatsSnapshot { cache_lookups: 15, cache_hits: 2, ..Default::default() },
        );
        let Event::FixpointIter { d_lookups, d_hits, .. } = e1 else { panic!("wrong kind") };
        assert_eq!((d_lookups, d_hits), (10, 2));
        let e2 = tr.event(
            FixKind::Reach,
            2,
            4,
            7,
            StatsSnapshot { cache_lookups: 18, cache_hits: 3, ..Default::default() },
        );
        let Event::FixpointIter { d_lookups, d_hits, .. } = e2 else { panic!("wrong kind") };
        assert_eq!((d_lookups, d_hits), (3, 1));
    }
}
