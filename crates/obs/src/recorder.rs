//! The flight recorder: a bounded ring of the most recent telemetry
//! events, kept per worker so a trip, panic or watchdog cancellation
//! can be dumped as a black-box file *after the fact* — without ever
//! recording a full trace to disk during healthy operation.
//!
//! ## Cost model
//!
//! The recorder reuses the telemetry cost model: it is a [`Sink`], so a
//! disabled handle never reaches it at all, and on an enabled handle it
//! adds one ring push per event. The `captured`/`dropped` tallies are
//! relaxed atomics; the ring itself sits behind a mutex that is
//! uncontended by construction — sinks are invoked under the telemetry
//! handle's sink lock, so the only other taker is an occasional status
//! or dump snapshot. A full ring overwrites the oldest event (counting
//! it as dropped) rather than growing: memory is bounded by the
//! capacity chosen at attach time, whatever the job does.
//!
//! ## Dump format
//!
//! [`Recorder::dump_jsonl`] renders the black-box file: one header line
//! (`dump_schema`, trace/job/worker identity, the dump reason and the
//! captured/dropped tallies) followed by the buffered events in their
//! ordinary JSON-lines schema ([`Event::to_json_line`], `trace_id` and
//! `worker` keys included). The header schema is pinned by the golden
//! test in `tests/schema.rs`; fields are append-only and removing or
//! re-typing one bumps [`DUMP_SCHEMA_VERSION`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::esc;
use crate::{lock, Event, EventCtx, Sink};

/// Version stamped into the header line of every black-box dump as
/// `"dump_schema"`. Bumped only when a required header field is removed
/// or changes meaning; adding fields is a compatible change.
pub const DUMP_SCHEMA_VERSION: u64 = 1;

/// Default ring capacity (events) when no `--recorder-cap` is given:
/// enough to cover the tail of a fixpoint plus the witness search that
/// follows it, small enough to be noise in a job's footprint.
pub const DEFAULT_RECORDER_CAP: usize = 256;

struct RecorderInner {
    cap: usize,
    ring: Mutex<VecDeque<(EventCtx, Event)>>,
    captured: AtomicU64,
    dropped: AtomicU64,
    /// Open-span name stack mirrored from the event stream, so a status
    /// snapshot can say which phase an in-flight job is in right now.
    phases: Mutex<Vec<&'static str>>,
    /// The most recent [`Event::HeapSample`] seen, kept outside the
    /// ring so it survives overwrites: a status snapshot or dump can
    /// always say where the nodes were, however busy the ring got.
    heap: Mutex<Option<Event>>,
}

/// A bounded ring buffer of the last N telemetry events. Cloning is
/// cheap and shares the ring: attach one clone to the job's
/// [`Telemetry`](crate::Telemetry) as a sink and keep another for the
/// status/dump side.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder(cap {}, {} captured, {} dropped)",
            self.inner.cap,
            self.captured(),
            self.dropped()
        )
    }
}

impl Recorder {
    /// A recorder holding at most `cap` events (clamped to at least 1).
    pub fn new(cap: usize) -> Recorder {
        let cap = cap.max(1);
        Recorder {
            inner: Arc::new(RecorderInner {
                cap,
                ring: Mutex::new(VecDeque::with_capacity(cap)),
                captured: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                phases: Mutex::new(Vec::new()),
                heap: Mutex::new(None),
            }),
        }
    }

    /// The ring capacity (events).
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Events seen (buffered or already overwritten).
    pub fn captured(&self) -> u64 {
        self.inner.captured.load(Ordering::Relaxed)
    }

    /// Events overwritten by newer ones because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.inner.ring).len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The innermost open phase according to the event stream, or
    /// `"idle"` outside any span — the live "what is this worker doing"
    /// answer of the `/status` snapshot.
    pub fn phase(&self) -> &'static str {
        lock(&self.inner.phases).last().copied().unwrap_or("idle")
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<(EventCtx, Event)> {
        lock(&self.inner.ring).iter().cloned().collect()
    }

    /// The worker's latest heap sample as `(live_nodes, widest_level)`,
    /// or `None` before the job's first [`Event::HeapSample`].
    pub fn heap_brief(&self) -> Option<(u64, u64)> {
        match *lock(&self.inner.heap) {
            Some(Event::HeapSample { live_nodes, widest_level, .. }) => {
                Some((live_nodes, widest_level))
            }
            _ => None,
        }
    }

    fn push(&self, ctx: &EventCtx, event: &Event) {
        match event {
            Event::SpanStart { kind, .. } => lock(&self.inner.phases).push(kind.name()),
            Event::SpanEnd { .. } => {
                lock(&self.inner.phases).pop();
            }
            Event::HeapSample { .. } => *lock(&self.inner.heap) = Some(event.clone()),
            _ => {}
        }
        self.inner.captured.fetch_add(1, Ordering::Relaxed);
        let mut ring = lock(&self.inner.ring);
        if ring.len() == self.inner.cap {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back((ctx.clone(), event.clone()));
    }

    /// Renders the black-box dump: the schema-versioned header line,
    /// then the buffered events as ordinary trace JSONL (oldest first).
    pub fn dump_jsonl(&self, meta: &DumpMeta<'_>) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 128);
        out.push_str(&format!("{{\"dump_schema\":{DUMP_SCHEMA_VERSION},\"trace_id\":\""));
        esc(&mut out, meta.trace_id);
        out.push_str("\",\"job\":\"");
        esc(&mut out, meta.job);
        out.push_str(&format!("\",\"worker\":{},\"reason\":\"", meta.worker));
        esc(&mut out, meta.reason);
        out.push_str(&format!(
            "\",\"captured\":{},\"dropped\":{},\"events\":{}",
            self.captured(),
            self.dropped(),
            events.len()
        ));
        // Appended (optional) header field: the last heap sample the
        // job emitted, so a governor trip shows where the nodes went
        // even when the sample itself was overwritten in the ring.
        if let Some(Event::HeapSample {
            live_nodes,
            free_nodes,
            widest_level,
            widest_width,
            table_len,
            table_slots,
        }) = *lock(&self.inner.heap)
        {
            out.push_str(&format!(
                ",\"heap\":{{\"live_nodes\":{live_nodes},\"free_nodes\":{free_nodes},\
                 \"widest_level\":{widest_level},\"widest_width\":{widest_width},\
                 \"table_len\":{table_len},\"table_slots\":{table_slots}}}"
            ));
        }
        out.push_str("}\n");
        for (ctx, event) in &events {
            out.push_str(&event.to_json_line(ctx));
            out.push('\n');
        }
        out
    }
}

impl Sink for Recorder {
    fn record(&mut self, ctx: &EventCtx, event: &Event) {
        self.push(ctx, event);
    }
}

/// Identity and cause stamped into a dump's header line.
#[derive(Debug, Clone, Copy)]
pub struct DumpMeta<'a> {
    /// The request's trace id.
    pub trace_id: &'a str,
    /// The job's display name.
    pub job: &'a str,
    /// The worker slot the job ran on.
    pub worker: u64,
    /// Why the dump was taken (`"exhausted: …"`, `"panic: …"`).
    pub reason: &'a str,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Json, SpanKind, StatsSnapshot, Telemetry};

    fn hop(n: u64) -> Event {
        Event::WitnessHop { constraint: n, ring: n }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = Recorder::new(3);
        for i in 0..5 {
            rec.push(&EventCtx::new(i, i), &hop(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.captured(), 5);
        assert_eq!(rec.dropped(), 2);
        // Oldest events fell out; the tail survives in order.
        let rings: Vec<u64> = rec
            .events()
            .iter()
            .map(|(_, e)| match e {
                Event::WitnessHop { ring, .. } => *ring,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert_eq!(rings, [2, 3, 4]);
    }

    #[test]
    fn phase_tracks_the_span_stack() {
        let rec = Recorder::new(8);
        assert_eq!(rec.phase(), "idle");
        let tele = Telemetry::new();
        tele.add_sink(Box::new(rec.clone()));
        let outer = tele.span_start(SpanKind::Check, None, StatsSnapshot::default());
        let inner = tele.span_start(SpanKind::CheckEu, None, StatsSnapshot::default());
        assert_eq!(rec.phase(), "check_eu");
        tele.span_end(inner, StatsSnapshot::default());
        assert_eq!(rec.phase(), "check");
        tele.span_end(outer, StatsSnapshot::default());
        assert_eq!(rec.phase(), "idle");
    }

    #[test]
    fn dump_header_and_events_parse_back() {
        let rec = Recorder::new(4);
        let tele = Telemetry::new();
        tele.set_trace("cafe0123", 1);
        tele.add_sink(Box::new(rec.clone()));
        tele.emit(hop(7));
        tele.emit(Event::Trip { reason: "node limit".into() });
        let dump = rec.dump_jsonl(&DumpMeta {
            trace_id: "cafe0123",
            job: "m.smv",
            worker: 1,
            reason: "exhausted: node limit",
        });
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3, "{dump}");
        let head = Json::parse(lines[0]).unwrap();
        assert_eq!(head.get("dump_schema").unwrap().as_u64(), Some(DUMP_SCHEMA_VERSION));
        assert_eq!(head.get("trace_id").unwrap().as_str(), Some("cafe0123"));
        assert_eq!(head.get("worker").unwrap().as_u64(), Some(1));
        assert_eq!(head.get("events").unwrap().as_u64(), Some(2));
        for line in &lines[1..] {
            let (ctx, _) = Event::from_json_line(line).unwrap();
            let tag = ctx.trace.expect("events carry the trace tag");
            assert_eq!(&*tag.trace_id, "cafe0123");
            assert_eq!(tag.worker, 1);
        }
    }

    #[test]
    fn last_heap_sample_survives_ring_overwrites_and_reaches_the_dump() {
        let rec = Recorder::new(2);
        assert_eq!(rec.heap_brief(), None);
        let sample = Event::HeapSample {
            live_nodes: 120,
            free_nodes: 8,
            widest_level: 3,
            widest_width: 40,
            table_len: 118,
            table_slots: 256,
        };
        rec.push(&EventCtx::new(0, 0), &sample);
        // Flood the ring so the sample itself is overwritten.
        for i in 1..5 {
            rec.push(&EventCtx::new(i, i), &hop(i));
        }
        assert_eq!(rec.heap_brief(), Some((120, 3)));
        let dump = rec.dump_jsonl(&DumpMeta {
            trace_id: "cafe0123",
            job: "m.smv",
            worker: 0,
            reason: "exhausted: node limit",
        });
        let head = Json::parse(dump.lines().next().unwrap()).unwrap();
        let heap = head.get("heap").expect("dump header carries the heap sample");
        assert_eq!(heap.get("live_nodes").unwrap().as_u64(), Some(120));
        assert_eq!(heap.get("widest_level").unwrap().as_u64(), Some(3));
        assert_eq!(heap.get("table_slots").unwrap().as_u64(), Some(256));
    }

    #[test]
    fn recorder_as_sink_is_shared_across_clones() {
        let rec = Recorder::new(16);
        let tele = Telemetry::new();
        tele.add_sink(Box::new(rec.clone()));
        tele.emit(hop(1));
        tele.emit(hop(2));
        assert_eq!(rec.captured(), 2);
        assert_eq!(rec.len(), 2);
    }
}
