//! The benchmark run ledger: the schema behind `BENCH_*.json`.
//!
//! A ledger holds one **baseline** run record (what `smc bench`
//! compares against) and a bounded **history** of accepted runs keyed
//! by commit, so the performance trajectory accumulates across PRs
//! instead of being overwritten. The ledger is plain JSON, rendered
//! deterministically (stable field order, sorted counters) so diffs in
//! review show exactly what moved.
//!
//! Comparison policy ([`Ledger::compare`]): wall times gate on the
//! **best-of-N** value with a configurable tolerance (noise only ever
//! inflates a wall time, so the minimum is the most reproducible
//! statistic); workload counters (cache lookups, created nodes) are
//! deterministic for a given build and gate **exactly** — drift means
//! the algorithm changed and the baseline needs a deliberate
//! `--update`.

use crate::json::{esc, Json};

/// Version stamped into the ledger as `"schema"`. Bumped only when a
/// required key is removed or changes meaning.
///
/// v2 adds the optional per-family `throughput_jobs_per_s` derived
/// metric (batch families). The addition is append-only: v1 documents
/// still parse (the field reads as absent) and v1 readers ignore the
/// extra key, but the version records when the derived metric became
/// part of the schema.
pub const LEDGER_SCHEMA_VERSION: u64 = 2;

/// Accepted history records kept per ledger (oldest evicted first).
const HISTORY_CAP: usize = 100;

/// Absolute wall-time slack under which a difference never gates:
/// microsecond-scale phases (a cached reachability re-read) sit entirely
/// inside scheduler jitter, where a percentage tolerance is meaningless.
const NOISE_FLOOR_S: f64 = 0.0005;

/// Wall-time statistics for one phase of one family.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase name: `compile`, `reach`, `check` or `witness`.
    pub phase: String,
    /// Median wall time over the repetitions, in seconds.
    pub median_s: f64,
    /// Best (minimum) wall time over the repetitions, in seconds.
    pub best_s: f64,
}

/// One model family's measurements within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyRecord {
    /// Family name (`mutex`, `arbiter2`, …).
    pub name: String,
    /// Per-phase wall-time statistics, in run order.
    pub phases: Vec<PhaseRecord>,
    /// Deterministic workload counters at end of run, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Derived throughput in jobs per second, for batch families
    /// (`None` for single-model families). Gated *inverted*: lower
    /// throughput than baseline is the regression.
    pub throughput_jobs_per_s: Option<f64>,
}

/// One complete `smc bench` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Short commit hash the binary was built from (`unknown` outside
    /// a git checkout).
    pub commit: String,
    /// Wall-clock timestamp of the run, milliseconds since the epoch.
    pub unix_ms: u64,
    /// Repetitions each family was run for.
    pub repetitions: u64,
    /// Was telemetry enabled during the measured runs?
    pub telemetry: bool,
    /// Per-family measurements.
    pub families: Vec<FamilyRecord>,
}

/// A `BENCH_*.json` document: baseline plus accepted history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// The run new measurements gate against.
    pub baseline: Option<RunRecord>,
    /// Accepted runs, oldest first, capped at 100.
    pub history: Vec<RunRecord>,
}

/// One gate violation found by [`Ledger::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `family/phase` or `family/counter` the violation is on.
    pub what: String,
    /// Human-readable description with both values.
    pub detail: String,
}

impl Ledger {
    /// An empty ledger (no baseline, no history).
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Appends an accepted run to the history, evicting the oldest
    /// entries beyond the cap.
    pub fn push_history(&mut self, run: RunRecord) {
        self.history.push(run);
        if self.history.len() > HISTORY_CAP {
            let excess = self.history.len() - HISTORY_CAP;
            self.history.drain(..excess);
        }
    }

    /// Gates `run` against this ledger's baseline: best-of-N wall times
    /// within `tolerance_pct` percent (and past an absolute half-
    /// millisecond noise floor), counters exactly equal. Returns every
    /// violation (empty = clean). A missing baseline, and phases or
    /// counters absent from the baseline, gate nothing.
    pub fn compare(&self, run: &RunRecord, tolerance_pct: f64) -> Vec<Regression> {
        let Some(base) = &self.baseline else { return Vec::new() };
        let mut out = Vec::new();
        for bf in &base.families {
            let Some(rf) = run.families.iter().find(|f| f.name == bf.name) else { continue };
            for bp in &bf.phases {
                let Some(rp) = rf.phases.iter().find(|p| p.phase == bp.phase) else { continue };
                let limit = bp.best_s * (1.0 + tolerance_pct / 100.0);
                if rp.best_s > limit && rp.best_s - bp.best_s > NOISE_FLOOR_S {
                    out.push(Regression {
                        what: format!("{}/{}", bf.name, bp.phase),
                        detail: format!(
                            "best {:.6}s vs baseline {:.6}s (+{:.1}%, tolerance {tolerance_pct}%)",
                            rp.best_s,
                            bp.best_s,
                            100.0 * (rp.best_s / bp.best_s - 1.0)
                        ),
                    });
                }
            }
            for (name, bv) in &bf.counters {
                let Some((_, rv)) = rf.counters.iter().find(|(n, _)| n == name) else { continue };
                if rv != bv {
                    out.push(Regression {
                        what: format!("{}/{}", bf.name, name),
                        detail: format!(
                            "counter {rv} vs baseline {bv} (exact gate; algorithm changed? \
                             re-baseline with --update)"
                        ),
                    });
                }
            }
            // Throughput gates inverted: more jobs per second is better,
            // so only a drop below the tolerance band is a regression.
            if let (Some(bt), Some(rt)) = (bf.throughput_jobs_per_s, rf.throughput_jobs_per_s) {
                if rt < bt * (1.0 - tolerance_pct / 100.0) {
                    out.push(Regression {
                        what: format!("{}/throughput_jobs_per_s", bf.name),
                        detail: format!(
                            "throughput {rt:.3} jobs/s vs baseline {bt:.3} \
                             (-{:.1}%, tolerance {tolerance_pct}%)",
                            100.0 * (1.0 - rt / bt)
                        ),
                    });
                }
            }
        }
        out
    }

    /// Parses a ledger document.
    ///
    /// # Errors
    ///
    /// A description of what is malformed: not JSON, wrong `"ledger"`
    /// marker, or a schema version newer than this crate understands.
    pub fn from_json(text: &str) -> Result<Ledger, String> {
        let j = Json::parse(text).ok_or("not valid JSON")?;
        if j.get("ledger").and_then(Json::as_str) != Some("smc-bench") {
            return Err("missing \"ledger\":\"smc-bench\" marker (old-format bench file? \
                        re-baseline with smc bench --update)"
                .to_string());
        }
        let schema = j.get("schema").and_then(Json::as_u64).ok_or("missing schema version")?;
        if schema > LEDGER_SCHEMA_VERSION {
            return Err(format!(
                "ledger schema v{schema} is newer than supported v{LEDGER_SCHEMA_VERSION}"
            ));
        }
        let baseline = match j.get("baseline") {
            None | Some(Json::Null) => None,
            Some(b) => Some(run_from_json(b)?),
        };
        let mut history = Vec::new();
        if let Some(Json::Arr(items)) = j.get("history") {
            for item in items {
                history.push(run_from_json(item)?);
            }
        }
        Ok(Ledger { baseline, history })
    }

    /// Renders the ledger as deterministic, diff-friendly JSON (one
    /// history record per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"ledger\": \"smc-bench\",\n  \"schema\": {LEDGER_SCHEMA_VERSION},\n"
        ));
        out.push_str("  \"baseline\": ");
        match &self.baseline {
            Some(run) => out.push_str(&run_to_json(run)),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"history\": [");
        for (i, run) in self.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&run_to_json(run));
        }
        if !self.history.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn run_to_json(run: &RunRecord) -> String {
    let mut out = String::from("{\"commit\":\"");
    esc(&mut out, &run.commit);
    out.push_str(&format!(
        "\",\"unix_ms\":{},\"repetitions\":{},\"telemetry\":{},\"families\":[",
        run.unix_ms, run.repetitions, run.telemetry
    ));
    for (i, fam) in run.families.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        esc(&mut out, &fam.name);
        out.push_str("\",\"phases\":[");
        for (k, p) in fam.phases.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":\"");
            esc(&mut out, &p.phase);
            out.push_str(&format!(
                "\",\"median_s\":{:.6},\"best_s\":{:.6}}}",
                p.median_s, p.best_s
            ));
        }
        out.push_str("],\"counters\":{");
        let mut counters = fam.counters.clone();
        counters.sort();
        for (k, (name, v)) in counters.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push('"');
            esc(&mut out, name);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
        if let Some(tp) = fam.throughput_jobs_per_s {
            out.push_str(&format!(",\"throughput_jobs_per_s\":{tp:.6}"));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn run_from_json(j: &Json) -> Result<RunRecord, String> {
    let s = |key: &str| {
        j.get(key).and_then(Json::as_str).map(str::to_string).ok_or(format!("run missing {key}"))
    };
    let u = |key: &str| j.get(key).and_then(Json::as_u64).ok_or(format!("run missing {key}"));
    let mut families = Vec::new();
    if let Some(Json::Arr(items)) = j.get("families") {
        for item in items {
            families.push(family_from_json(item)?);
        }
    }
    Ok(RunRecord {
        commit: s("commit")?,
        unix_ms: u("unix_ms")?,
        repetitions: u("repetitions")?,
        telemetry: j.get("telemetry").and_then(Json::as_bool).unwrap_or(false),
        families,
    })
}

fn family_from_json(j: &Json) -> Result<FamilyRecord, String> {
    let name =
        j.get("name").and_then(Json::as_str).map(str::to_string).ok_or("family missing name")?;
    let mut phases = Vec::new();
    if let Some(Json::Arr(items)) = j.get("phases") {
        for item in items {
            phases.push(PhaseRecord {
                phase: item
                    .get("phase")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or("phase missing name")?,
                median_s: item.get("median_s").and_then(Json::as_f64).ok_or("missing median_s")?,
                best_s: item.get("best_s").and_then(Json::as_f64).ok_or("missing best_s")?,
            });
        }
    }
    let mut counters = Vec::new();
    if let Some(Json::Obj(fields)) = j.get("counters") {
        for (k, v) in fields {
            counters.push((k.clone(), v.as_u64().ok_or(format!("counter {k} not integral"))?));
        }
    }
    counters.sort();
    let throughput_jobs_per_s = j.get("throughput_jobs_per_s").and_then(Json::as_f64);
    Ok(FamilyRecord { name, phases, counters, throughput_jobs_per_s })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_run(best_reach: f64, lookups: u64, commit: &str) -> RunRecord {
        RunRecord {
            commit: commit.to_string(),
            unix_ms: 1_700_000_000_000,
            repetitions: 5,
            telemetry: false,
            families: vec![FamilyRecord {
                name: "mutex".into(),
                phases: vec![
                    // Dyadic values: exact through the ledger's 6-decimal
                    // quantization, so round-trip tests can use equality.
                    PhaseRecord { phase: "compile".into(), median_s: 0.5, best_s: 0.25 },
                    PhaseRecord {
                        phase: "reach".into(),
                        median_s: 2.0 * best_reach,
                        best_s: best_reach,
                    },
                ],
                counters: vec![("cache_lookups".into(), lookups), ("created_nodes".into(), 50)],
                throughput_jobs_per_s: None,
            }],
        }
    }

    /// A run with a single batch family carrying the derived metric.
    fn batch_run(throughput: f64, commit: &str) -> RunRecord {
        RunRecord {
            commit: commit.to_string(),
            unix_ms: 1_700_000_000_000,
            repetitions: 4,
            telemetry: false,
            families: vec![FamilyRecord {
                name: "batch".into(),
                phases: vec![PhaseRecord { phase: "jobs4".into(), median_s: 0.5, best_s: 0.25 }],
                counters: vec![("job00_cache_lookups".into(), 700)],
                throughput_jobs_per_s: Some(throughput),
            }],
        }
    }

    #[test]
    fn ledger_round_trips() {
        let mut ledger = Ledger::new();
        ledger.baseline = Some(sample_run(0.015625, 1000, "abc1234"));
        ledger.push_history(sample_run(0.03125, 1000, "abc1234"));
        ledger.push_history(sample_run(0.046875, 1000, "def5678"));
        let text = ledger.to_json();
        let back = Ledger::from_json(&text).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(text, back.to_json(), "rendering must be stable");
    }

    #[test]
    fn compare_gates_wall_time_with_tolerance() {
        let mut ledger = Ledger::new();
        ledger.baseline = Some(sample_run(0.010, 1000, "base"));
        // +2% is within a 3% tolerance.
        assert!(ledger.compare(&sample_run(0.0102, 1000, "x"), 3.0).is_empty());
        // +10% is not.
        let regs = ledger.compare(&sample_run(0.011, 1000, "x"), 3.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "mutex/reach");
        assert!(regs[0].detail.contains("+10.0%"), "{}", regs[0].detail);
        // Faster is never a regression.
        assert!(ledger.compare(&sample_run(0.002, 1000, "x"), 3.0).is_empty());
    }

    #[test]
    fn compare_gates_counters_exactly() {
        let mut ledger = Ledger::new();
        ledger.baseline = Some(sample_run(0.010, 1000, "base"));
        let regs = ledger.compare(&sample_run(0.010, 1001, "x"), 3.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "mutex/cache_lookups");
        assert!(regs[0].detail.contains("--update"), "{}", regs[0].detail);
    }

    #[test]
    fn throughput_gates_inverted_with_tolerance() {
        let mut ledger = Ledger::new();
        ledger.baseline = Some(batch_run(64.0, "base"));
        // Faster (more jobs/s) is never a regression, nor is a dip
        // inside the tolerance band.
        assert!(ledger.compare(&batch_run(80.0, "x"), 10.0).is_empty());
        assert!(ledger.compare(&batch_run(60.0, "x"), 10.0).is_empty());
        // A drop past the band is.
        let regs = ledger.compare(&batch_run(32.0, "x"), 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "batch/throughput_jobs_per_s");
        assert!(regs[0].detail.contains("-50.0%"), "{}", regs[0].detail);
    }

    #[test]
    fn throughput_round_trips_and_v1_documents_still_parse() {
        let mut ledger = Ledger::new();
        ledger.baseline = Some(batch_run(64.015625, "abc1234"));
        let text = ledger.to_json();
        assert!(text.contains("\"throughput_jobs_per_s\":64.015625"), "{text}");
        let back = Ledger::from_json(&text).unwrap();
        assert_eq!(back, ledger);

        // A v1 document (no derived metric, schema 1) is still accepted;
        // the field simply reads as absent and gates nothing.
        let v1 = "{\"ledger\":\"smc-bench\",\"schema\":1,\"baseline\":{\"commit\":\"old\",\
                  \"unix_ms\":1,\"repetitions\":5,\"telemetry\":false,\"families\":[{\
                  \"name\":\"mutex\",\"phases\":[],\"counters\":{\"cache_lookups\":9}}]},\
                  \"history\":[]}";
        let old = Ledger::from_json(v1).unwrap();
        let base = old.baseline.unwrap();
        assert_eq!(base.families[0].throughput_jobs_per_s, None);
        let mut with_old_base = Ledger::new();
        with_old_base.baseline =
            Some(RunRecord { families: base.families, ..batch_run(1.0, "old") });
        assert!(with_old_base.compare(&batch_run(0.001, "x"), 10.0).is_empty());
    }

    #[test]
    fn compare_without_baseline_gates_nothing() {
        let ledger = Ledger::new();
        assert!(ledger.compare(&sample_run(9.9, 42, "x"), 0.0).is_empty());
    }

    #[test]
    fn history_is_capped() {
        let mut ledger = Ledger::new();
        for i in 0..110 {
            ledger.push_history(sample_run(0.01, 1000, &format!("c{i}")));
        }
        assert_eq!(ledger.history.len(), 100);
        assert_eq!(ledger.history[0].commit, "c10", "oldest evicted first");
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Ledger::from_json("junk").is_err());
        assert!(Ledger::from_json("{\"arbiter\":{}}").unwrap_err().contains("--update"));
        let newer = format!(
            "{{\"ledger\":\"smc-bench\",\"schema\":{},\"baseline\":null,\"history\":[]}}",
            LEDGER_SCHEMA_VERSION + 1
        );
        assert!(Ledger::from_json(&newer).unwrap_err().contains("newer"));
    }
}
