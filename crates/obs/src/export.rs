//! Standard trace export: converts a v1 JSON-lines trace into the
//! Chrome trace-event format (open in `chrome://tracing` / Perfetto)
//! and the speedscope evented-profile format (open on speedscope.app).
//!
//! Both exporters are text-to-text (`&str` in, JSON `String` out) so
//! they need no filesystem access and golden-test trivially. They share
//! the trace reader's tolerance: unparseable lines are skipped, and a
//! truncated trace (open spans at EOF) is closed at the last timestamp
//! rather than rejected.

use crate::json::esc;
use crate::{Event, EventCtx};

/// Shared line-by-line trace walk. Calls `f` for each parsed record;
/// returns `Err` when not a single line parses (the caller almost
/// certainly pointed at the wrong file).
fn walk(text: &str, mut f: impl FnMut(&EventCtx, &Event)) -> Result<u64, String> {
    let mut parsed = 0u64;
    let mut skipped = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Some((ctx, event)) => {
                parsed += 1;
                f(&ctx, &event);
            }
            None => skipped += 1,
        }
    }
    if parsed == 0 {
        return Err(format!(
            "no trace records found ({skipped} unparseable lines); \
             expected JSON lines with a \"v\" schema field"
        ));
    }
    Ok(skipped)
}

fn str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    esc(out, val);
    out.push('"');
}

/// Converts a JSON-lines trace into the Chrome trace-event format:
/// one `"B"`/`"E"` duration event per span boundary and one `"i"`
/// instant event per point event (fixpoint iterations, witness hops,
/// GC, trips), all on a single synthetic pid/tid since the checker is
/// single-threaded. Timestamps are the trace's own microsecond clock.
///
/// # Errors
///
/// A description of the problem if no line of `text` parses.
pub fn export_chrome(text: &str) -> Result<String, String> {
    let mut events: Vec<String> = Vec::new();
    walk(text, |ctx, event| {
        let mut e = String::from("{");
        match event {
            Event::SpanStart { kind, label, .. } => {
                str_field(&mut e, "name", kind.name());
                e.push_str(&format!(",\"ph\":\"B\",\"ts\":{}", ctx.t_us));
                if let Some(l) = label {
                    e.push_str(",\"args\":{");
                    str_field(&mut e, "label", l);
                    e.push('}');
                }
            }
            Event::SpanEnd { kind, live_nodes, peak_nodes, delta, .. } => {
                str_field(&mut e, "name", kind.name());
                e.push_str(&format!(
                    ",\"ph\":\"E\",\"ts\":{},\"args\":{{\"live_nodes\":{live_nodes},\
                     \"peak_nodes\":{peak_nodes},\"cache_lookups\":{},\"cache_hits\":{}}}",
                    ctx.t_us, delta.cache_lookups, delta.cache_hits
                ));
            }
            // Heap samples render as a Chrome counter lane ("ph":"C"):
            // stacked live/free series plus the widest level's width,
            // drawn as a timeline track above the span flame.
            Event::HeapSample { live_nodes, free_nodes, widest_width, .. } => {
                str_field(&mut e, "name", "heap");
                e.push_str(&format!(
                    ",\"ph\":\"C\",\"ts\":{},\"args\":{{\"live_nodes\":{live_nodes},\
                     \"free_nodes\":{free_nodes},\"widest_width\":{widest_width}}}",
                    ctx.t_us
                ));
            }
            other => {
                str_field(&mut e, "name", other.kind_name());
                e.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", ctx.t_us));
                let args = match other {
                    Event::FixpointIter {
                        phase, iteration, frontier_size, approx_size, ..
                    } => {
                        format!(
                            "{{\"phase\":\"{}\",\"iteration\":{iteration},\
                             \"frontier_size\":{frontier_size},\"approx_size\":{approx_size}}}",
                            phase.name()
                        )
                    }
                    Event::WitnessHop { constraint, ring } => {
                        format!("{{\"constraint\":{constraint},\"ring\":{ring}}}")
                    }
                    Event::CycleClose { closed, arc_len } => {
                        format!("{{\"closed\":{closed},\"arc_len\":{arc_len}}}")
                    }
                    Event::Gc { reclaimed, pause_us, .. } => {
                        format!("{{\"reclaimed\":{reclaimed},\"pause_us\":{pause_us}}}")
                    }
                    _ => String::new(),
                };
                if !args.is_empty() {
                    e.push_str(",\"args\":");
                    e.push_str(&args);
                }
            }
        }
        e.push_str(",\"pid\":1,\"tid\":1,\"cat\":\"smc\"}");
        events.push(e);
    })?;
    Ok(format!("{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n", events.join(",\n")))
}

/// Converts a JSON-lines trace into a speedscope *evented* profile:
/// span boundaries become `"O"`/`"C"` frame events over a shared frame
/// table, in microseconds. Speedscope requires strict LIFO nesting, so
/// a span end cascades closes for any abandoned inner spans, and spans
/// still open at EOF are closed at the final timestamp.
///
/// # Errors
///
/// A description of the problem if no line of `text` parses.
pub fn export_speedscope(text: &str) -> Result<String, String> {
    let mut frames: Vec<String> = Vec::new();
    let mut frame_of = std::collections::BTreeMap::<String, usize>::new();
    // Open spans: (span id, frame index).
    let mut stack: Vec<(u64, usize)> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    let mut end_value = 0u64;
    walk(text, |ctx, event| {
        end_value = end_value.max(ctx.t_us);
        match event {
            Event::SpanStart { id, kind, label } => {
                let name = match label {
                    Some(l) => format!("{}: {l}", kind.name()),
                    None => kind.name().to_string(),
                };
                let frame = *frame_of.entry(name.clone()).or_insert_with(|| {
                    frames.push(name);
                    frames.len() - 1
                });
                stack.push((*id, frame));
                events.push(format!("{{\"type\":\"O\",\"frame\":{frame},\"at\":{}}}", ctx.t_us));
            }
            // Close LIFO down to (and including) the ending span; an
            // end with no matching open (truncated head) is a no-op
            // rather than an unbalanced close.
            Event::SpanEnd { id, .. } if stack.iter().any(|(open, _)| open == id) => {
                while let Some((open, frame)) = stack.pop() {
                    events
                        .push(format!("{{\"type\":\"C\",\"frame\":{frame},\"at\":{}}}", ctx.t_us));
                    if open == *id {
                        break;
                    }
                }
            }
            _ => {}
        }
    })?;
    while let Some((_, frame)) = stack.pop() {
        events.push(format!("{{\"type\":\"C\",\"frame\":{frame},\"at\":{end_value}}}"));
    }
    let mut frame_objs = String::new();
    for (i, name) in frames.iter().enumerate() {
        if i > 0 {
            frame_objs.push(',');
        }
        frame_objs.push_str("{\"name\":\"");
        esc(&mut frame_objs, name);
        frame_objs.push_str("\"}");
    }
    Ok(format!(
        "{{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\
         \"shared\":{{\"frames\":[{frame_objs}]}},\
         \"profiles\":[{{\"type\":\"evented\",\"name\":\"smc trace\",\
         \"unit\":\"microseconds\",\"startValue\":0,\"endValue\":{end_value},\
         \"events\":[\n{}\n]}}],\
         \"exporter\":\"smc profile export\"}}\n",
        events.join(",\n")
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Json, SpanKind, StatsDelta};

    /// A small synthetic trace: reach span containing one iteration,
    /// then a witness span left open (truncated tail).
    fn sample_trace() -> String {
        let mut lines = Vec::new();
        let mut seq = 0u64;
        let mut push = |t_us: u64, e: Event| {
            lines.push(e.to_json_line(&EventCtx::new(seq, t_us)));
            seq += 1;
        };
        push(0, Event::SpanStart { id: 1, kind: SpanKind::Reach, label: None });
        push(
            5,
            Event::FixpointIter {
                phase: crate::FixKind::Reach,
                iteration: 1,
                frontier_size: 4,
                approx_size: 9,
                live_nodes: 20,
                peak_nodes: 25,
                d_lookups: 8,
                d_hits: 3,
            },
        );
        push(
            10,
            Event::SpanEnd {
                id: 1,
                kind: SpanKind::Reach,
                wall_us: 10,
                live_nodes: 20,
                peak_nodes: 25,
                delta: StatsDelta { cache_lookups: 8, cache_hits: 3, ..Default::default() },
            },
        );
        push(12, Event::SpanStart { id: 2, kind: SpanKind::Witness, label: Some("AG p".into()) });
        lines.join("\n") + "\n"
    }

    #[test]
    fn chrome_export_is_valid_json_with_balanced_phases() {
        let out = export_chrome(&sample_trace()).unwrap();
        let j = Json::parse(&out).unwrap();
        let Json::Arr(events) = j.get("traceEvents").unwrap() else { panic!("traceEvents") };
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("reach"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(events[2].get("args").unwrap().get("cache_lookups").unwrap().as_u64(), Some(8));
        assert_eq!(events[3].get("args").unwrap().get("label").unwrap().as_str(), Some("AG p"));
    }

    #[test]
    fn speedscope_export_closes_truncated_spans() {
        let out = export_speedscope(&sample_trace()).unwrap();
        let j = Json::parse(&out).unwrap();
        let frames = j.get("shared").unwrap().get("frames").unwrap();
        let Json::Arr(frames) = frames else { panic!("frames") };
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].get("name").unwrap().as_str(), Some("witness: AG p"));
        let profile = match j.get("profiles").unwrap() {
            Json::Arr(p) => &p[0],
            _ => panic!("profiles"),
        };
        let Json::Arr(events) = profile.get("events").unwrap() else { panic!("events") };
        // O reach, C reach, O witness, synthesized C witness at EOF.
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].get("type").unwrap().as_str(), Some("C"));
        assert_eq!(
            events[3].get("at").unwrap().as_u64(),
            profile.get("endValue").unwrap().as_u64()
        );
        // O/C pairs reference the same frame, LIFO.
        assert_eq!(
            events[0].get("frame").unwrap().as_u64(),
            events[1].get("frame").unwrap().as_u64()
        );
    }

    #[test]
    fn abandoned_inner_spans_cascade_closed() {
        // outer opens, inner opens, outer's end arrives (the telemetry
        // cascade normally closes inner first, but a hand-edited trace
        // might not).
        let mut lines = Vec::new();
        let mut seq = 0u64;
        let mut push = |t_us: u64, e: Event| {
            lines.push(e.to_json_line(&EventCtx::new(seq, t_us)));
            seq += 1;
        };
        push(0, Event::SpanStart { id: 1, kind: SpanKind::FairEg, label: None });
        push(1, Event::SpanStart { id: 2, kind: SpanKind::CheckEu, label: None });
        push(
            9,
            Event::SpanEnd {
                id: 1,
                kind: SpanKind::FairEg,
                wall_us: 9,
                live_nodes: 0,
                peak_nodes: 0,
                delta: StatsDelta::default(),
            },
        );
        let out = export_speedscope(&(lines.join("\n") + "\n")).unwrap();
        let j = Json::parse(&out).unwrap();
        let profile = match j.get("profiles").unwrap() {
            Json::Arr(p) => &p[0],
            _ => panic!("profiles"),
        };
        let Json::Arr(events) = profile.get("events").unwrap() else { panic!("events") };
        let kinds: Vec<&str> =
            events.iter().map(|e| e.get("type").unwrap().as_str().unwrap()).collect();
        assert_eq!(kinds, ["O", "O", "C", "C"]);
        // Inner (frame of id 2) closes before outer.
        assert_eq!(
            events[2].get("frame").unwrap().as_u64(),
            events[1].get("frame").unwrap().as_u64()
        );
        assert_eq!(
            events[3].get("frame").unwrap().as_u64(),
            events[0].get("frame").unwrap().as_u64()
        );
    }

    #[test]
    fn heap_samples_become_a_chrome_counter_lane_and_speedscope_ignores_them() {
        let sample = Event::HeapSample {
            live_nodes: 120,
            free_nodes: 8,
            widest_level: 3,
            widest_width: 40,
            table_len: 118,
            table_slots: 256,
        };
        let trace = sample_trace() + &sample.to_json_line(&EventCtx::new(9, 15)) + "\n";
        let out = export_chrome(&trace).unwrap();
        let j = Json::parse(&out).unwrap();
        let Json::Arr(events) = j.get("traceEvents").unwrap() else { panic!("traceEvents") };
        let lane = events.last().unwrap();
        assert_eq!(lane.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(lane.get("name").unwrap().as_str(), Some("heap"));
        assert_eq!(lane.get("args").unwrap().get("live_nodes").unwrap().as_u64(), Some(120));
        assert_eq!(lane.get("args").unwrap().get("widest_width").unwrap().as_u64(), Some(40));
        // Speedscope has no counter concept; the sample adds no frame
        // and no open/close event (it only advances the EOF clock that
        // closes the truncated witness span).
        let ss = Json::parse(&export_speedscope(&trace).unwrap()).unwrap();
        let Json::Arr(frames) = ss.get("shared").unwrap().get("frames").unwrap() else {
            panic!("frames")
        };
        assert_eq!(frames.len(), 2);
        let profile = match ss.get("profiles").unwrap() {
            Json::Arr(p) => &p[0],
            _ => panic!("profiles"),
        };
        let Json::Arr(ss_events) = profile.get("events").unwrap() else { panic!("events") };
        assert_eq!(ss_events.len(), 4);
    }

    #[test]
    fn exports_reject_garbage() {
        assert!(export_chrome("junk\n").is_err());
        assert!(export_speedscope("").is_err());
    }
}
