//! The heap observatory's snapshot schema: a structural report of a
//! BDD manager's heap — per-level occupancy, unique/computed table
//! health, sharing, and adjacent-swap sifting-gain estimates.
//!
//! The snapshot is *built* by `smc-bdd` (which owns the tables) and
//! *rendered* here, so every consumer — `smc inspect`, `--heap`, the
//! flight recorder, the schema tests — agrees on one wire format.
//!
//! ## Schema contract
//!
//! The JSON rendering is one object with the required top-level keys
//! [`HEAP_SNAPSHOT_KEYS`], stamped with `"heap_schema"`
//! ([`HEAP_SCHEMA_VERSION`]). The vocabulary is append-only: new
//! optional keys may appear at any time; removing or re-typing one
//! bumps the version. Ratios are JSON numbers in `[0, 1]` ranges noted
//! per field; every reported load factor is in `(0, 1]` (empty tables
//! report `0` and are excluded from the aggregate).

use crate::json::{esc, Json};

/// Version stamped into every heap snapshot as `"heap_schema"`.
pub const HEAP_SCHEMA_VERSION: u64 = 1;

/// Fixpoint iterations between [`Event::HeapSample`](crate::Event)
/// briefs. Both the reachability frontier loop and the checker's
/// EU/EG loops emit at iteration 1 (anchoring the lane) and then every
/// multiple of this cadence; the brief is an `O(levels)` fold — cheap,
/// but there is no reason to pay it every iteration when level
/// populations drift slowly.
pub const HEAP_SAMPLE_CADENCE: u64 = 8;

/// Required top-level keys of a rendered [`HeapSnapshot`], in order
/// (append-only contract; pinned by the golden test in `tests/schema.rs`).
pub const HEAP_SNAPSHOT_KEYS: &[&str] = &[
    "heap_schema",
    "live_nodes",
    "terminals",
    "free_nodes",
    "peak_nodes",
    "dead_ratio",
    "sharing_factor",
    "levels",
    "widest",
    "unique",
    "computed",
    "sift",
];

/// One variable level of the order, with its unique-table health.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapLevel {
    /// Position in the variable order (0 = topmost).
    pub level: u64,
    /// The variable living at this level.
    pub var: String,
    /// Live nodes labelled with this variable.
    pub nodes: u64,
    /// Open-addressing slots of this level's unique table.
    pub slots: u64,
    /// `nodes / slots`; `0` for an empty table, otherwise in `(0, 1]`.
    pub load: f64,
    /// Longest circular probe distance of any entry (0 = all home).
    pub longest_probe: u64,
}

/// An entry of the top-k widest-levels list.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapWidest {
    /// The level.
    pub level: u64,
    /// The variable at that level.
    pub var: String,
    /// Its node count.
    pub nodes: u64,
}

/// Aggregate unique-table health over all (non-empty) levels.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapUnique {
    /// Total entries across every level's table.
    pub entries: u64,
    /// Total slots across non-empty tables (the load denominator).
    pub slots: u64,
    /// `entries / slots` over non-empty tables; in `(0, 1]` when any
    /// entry exists, else `0`.
    pub load: f64,
    /// Longest probe distance anywhere.
    pub longest_probe: u64,
    /// Probe-length histogram: `probe_hist[d]` entries sit `d` slots
    /// from home. Truncated after the last non-zero bucket.
    pub probe_hist: Vec<u64>,
}

/// Computed-table occupancy of one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapCacheOp {
    /// The operation name (`"ite"`, `"and"`, ...).
    pub op: String,
    /// Live (current-generation) entries cached for it.
    pub live: u64,
}

/// Computed-table occupancy, total and by operation.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapComputed {
    /// Table capacity (entries).
    pub capacity: u64,
    /// Live (current-generation) entries.
    pub live: u64,
    /// `live / capacity`, in `[0, 1]`.
    pub occupancy: f64,
    /// Live entries per operation; zero-traffic ops omitted.
    pub ops: Vec<HeapCacheOp>,
}

/// The estimated effect of swapping one adjacent level pair — a
/// read-only mirror of the Rudell swap the reorderer would perform, and
/// the primitive a sifting schedule ranks candidates by.
#[derive(Debug, Clone, PartialEq)]
pub struct SiftGain {
    /// The upper level of the pair.
    pub upper: u64,
    /// The lower level (`upper + 1`).
    pub lower: u64,
    /// Nodes currently on the two levels.
    pub current: u64,
    /// Estimated nodes on them after the swap.
    pub estimated: u64,
    /// `current - estimated`: positive means the swap would shrink the
    /// heap.
    pub gain: i64,
}

/// A point-in-time structural report of a BDD manager's heap.
///
/// Invariants (checked by the kernel-side builder's tests and the CLI
/// round-trip test): `live_nodes = terminals + Σ levels[i].nodes`;
/// every non-zero `load` is in `(0, 1]`; `sift` has one entry per
/// adjacent level pair.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapSnapshot {
    /// Live nodes, terminals included (the manager's `num_nodes()`).
    pub live_nodes: u64,
    /// Terminal nodes (always 2: `0` and `1`).
    pub terminals: u64,
    /// Dead slots on the free list, reusable without growing the pool.
    pub free_nodes: u64,
    /// Node-pool high-water mark.
    pub peak_nodes: u64,
    /// `free / (internal live + free)`: the fraction of the allocated
    /// pool that is dead. In `[0, 1]`.
    pub dead_ratio: f64,
    /// Average in-degree of internal nodes (child edges from live
    /// nodes plus protected-root references, over internal nodes):
    /// `1.0` means a tree, higher means more sharing.
    pub sharing_factor: f64,
    /// Every level of the order, topmost first.
    pub levels: Vec<HeapLevel>,
    /// The top-k widest levels, widest first (ties to the upper level).
    pub widest: Vec<HeapWidest>,
    /// Aggregate unique-table health.
    pub unique: HeapUnique,
    /// Computed-table occupancy.
    pub computed: HeapComputed,
    /// Sifting-gain estimate for each adjacent level pair, top first.
    pub sift: Vec<SiftGain>,
}

/// Formats an `f64` the way the registry does: integral values without
/// a fraction, everything else via the shortest round-tripping repr.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl HeapSnapshot {
    /// Renders the snapshot as one JSON object (no trailing newline).
    /// Key order follows [`HEAP_SNAPSHOT_KEYS`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"heap_schema\":{HEAP_SCHEMA_VERSION},\"live_nodes\":{},\"terminals\":{},\
             \"free_nodes\":{},\"peak_nodes\":{},\"dead_ratio\":{},\"sharing_factor\":{}",
            self.live_nodes,
            self.terminals,
            self.free_nodes,
            self.peak_nodes,
            fmt_f64(self.dead_ratio),
            fmt_f64(self.sharing_factor),
        ));
        s.push_str(",\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"level\":{},\"var\":\"", l.level));
            esc(&mut s, &l.var);
            s.push_str(&format!(
                "\",\"nodes\":{},\"slots\":{},\"load\":{},\"longest_probe\":{}}}",
                l.nodes,
                l.slots,
                fmt_f64(l.load),
                l.longest_probe
            ));
        }
        s.push_str("],\"widest\":[");
        for (i, w) in self.widest.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"level\":{},\"var\":\"", w.level));
            esc(&mut s, &w.var);
            s.push_str(&format!("\",\"nodes\":{}}}", w.nodes));
        }
        s.push_str(&format!(
            "],\"unique\":{{\"entries\":{},\"slots\":{},\"load\":{},\"longest_probe\":{},\
             \"probe_hist\":[",
            self.unique.entries,
            self.unique.slots,
            fmt_f64(self.unique.load),
            self.unique.longest_probe
        ));
        for (i, c) in self.unique.probe_hist.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{c}"));
        }
        s.push_str(&format!(
            "]}},\"computed\":{{\"capacity\":{},\"live\":{},\"occupancy\":{},\"ops\":[",
            self.computed.capacity,
            self.computed.live,
            fmt_f64(self.computed.occupancy)
        ));
        for (i, o) in self.computed.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"op\":\"");
            esc(&mut s, &o.op);
            s.push_str(&format!("\",\"live\":{}}}", o.live));
        }
        s.push_str("]},\"sift\":[");
        for (i, g) in self.sift.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"upper\":{},\"lower\":{},\"current\":{},\"estimated\":{},\"gain\":{}}}",
                g.upper, g.lower, g.current, g.estimated, g.gain
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a snapshot back from its JSON rendering. Returns `None`
    /// for malformed documents or a newer schema version.
    pub fn from_json(j: &Json) -> Option<HeapSnapshot> {
        if j.get("heap_schema")?.as_u64()? > HEAP_SCHEMA_VERSION {
            return None;
        }
        let arr = |v: &Json| match v {
            Json::Arr(items) => Some(items.clone()),
            _ => None,
        };
        let levels = arr(j.get("levels")?)?
            .iter()
            .map(|l| {
                Some(HeapLevel {
                    level: l.get("level")?.as_u64()?,
                    var: l.get("var")?.as_str()?.to_string(),
                    nodes: l.get("nodes")?.as_u64()?,
                    slots: l.get("slots")?.as_u64()?,
                    load: l.get("load")?.as_f64()?,
                    longest_probe: l.get("longest_probe")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let widest = arr(j.get("widest")?)?
            .iter()
            .map(|w| {
                Some(HeapWidest {
                    level: w.get("level")?.as_u64()?,
                    var: w.get("var")?.as_str()?.to_string(),
                    nodes: w.get("nodes")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let u = j.get("unique")?;
        let unique = HeapUnique {
            entries: u.get("entries")?.as_u64()?,
            slots: u.get("slots")?.as_u64()?,
            load: u.get("load")?.as_f64()?,
            longest_probe: u.get("longest_probe")?.as_u64()?,
            probe_hist: arr(u.get("probe_hist")?)?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()?,
        };
        let c = j.get("computed")?;
        let computed = HeapComputed {
            capacity: c.get("capacity")?.as_u64()?,
            live: c.get("live")?.as_u64()?,
            occupancy: c.get("occupancy")?.as_f64()?,
            ops: arr(c.get("ops")?)?
                .iter()
                .map(|o| {
                    Some(HeapCacheOp {
                        op: o.get("op")?.as_str()?.to_string(),
                        live: o.get("live")?.as_u64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        };
        let sift = arr(j.get("sift")?)?
            .iter()
            .map(|g| {
                Some(SiftGain {
                    upper: g.get("upper")?.as_u64()?,
                    lower: g.get("lower")?.as_u64()?,
                    current: g.get("current")?.as_u64()?,
                    estimated: g.get("estimated")?.as_u64()?,
                    gain: g.get("gain")?.as_f64().filter(|n| n.fract() == 0.0)? as i64,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(HeapSnapshot {
            live_nodes: j.get("live_nodes")?.as_u64()?,
            terminals: j.get("terminals")?.as_u64()?,
            free_nodes: j.get("free_nodes")?.as_u64()?,
            peak_nodes: j.get("peak_nodes")?.as_u64()?,
            dead_ratio: j.get("dead_ratio")?.as_f64()?,
            sharing_factor: j.get("sharing_factor")?.as_f64()?,
            levels,
            widest,
            unique,
            computed,
            sift,
        })
    }

    /// Renders the snapshot as the human report `smc inspect` prints.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        s.push_str("-- heap snapshot --\n");
        s.push_str(&format!(
            "nodes           : {} live ({} terminal), {} free, {} peak\n",
            self.live_nodes, self.terminals, self.free_nodes, self.peak_nodes
        ));
        s.push_str(&format!(
            "structure       : dead ratio {:.3}, sharing factor {:.3}\n",
            self.dead_ratio, self.sharing_factor
        ));
        s.push_str(&format!(
            "unique tables   : {} entries / {} slots (load {:.3}), longest probe {}\n",
            self.unique.entries, self.unique.slots, self.unique.load, self.unique.longest_probe
        ));
        s.push_str(&format!(
            "computed table  : {} live / {} capacity (occupancy {:.3})\n",
            self.computed.live, self.computed.capacity, self.computed.occupancy
        ));
        for o in &self.computed.ops {
            s.push_str(&format!("  {:<11}: {} live\n", o.op, o.live));
        }
        if !self.widest.is_empty() {
            s.push_str("widest levels   :\n");
            for w in &self.widest {
                s.push_str(&format!("  level {:>3} ({}): {} nodes\n", w.level, w.var, w.nodes));
            }
        }
        let mut best: Vec<&SiftGain> = self.sift.iter().collect();
        best.sort_by_key(|g| -g.gain);
        if let Some(top) = best.first().filter(|g| g.gain > 0) {
            s.push_str(&format!(
                "best sift swap  : levels {}<->{} would drop {} nodes ({} -> {})\n",
                top.upper, top.lower, top.gain, top.current, top.estimated
            ));
        } else if !self.sift.is_empty() {
            s.push_str("best sift swap  : none profitable (order is locally optimal)\n");
        }
        s
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> HeapSnapshot {
        HeapSnapshot {
            live_nodes: 12,
            terminals: 2,
            free_nodes: 3,
            peak_nodes: 20,
            dead_ratio: 0.23076923076923078,
            sharing_factor: 1.5,
            levels: vec![
                HeapLevel {
                    level: 0,
                    var: "x".into(),
                    nodes: 4,
                    slots: 16,
                    load: 0.25,
                    longest_probe: 1,
                },
                HeapLevel {
                    level: 1,
                    var: "y".into(),
                    nodes: 6,
                    slots: 16,
                    load: 0.375,
                    longest_probe: 2,
                },
            ],
            widest: vec![HeapWidest { level: 1, var: "y".into(), nodes: 6 }],
            unique: HeapUnique {
                entries: 10,
                slots: 32,
                load: 0.3125,
                longest_probe: 2,
                probe_hist: vec![7, 2, 1],
            },
            computed: HeapComputed {
                capacity: 1024,
                live: 5,
                occupancy: 0.0048828125,
                ops: vec![HeapCacheOp { op: "ite".into(), live: 5 }],
            },
            sift: vec![SiftGain { upper: 0, lower: 1, current: 10, estimated: 9, gain: 1 }],
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let text = snap.to_json();
        let j = Json::parse(&text).unwrap_or_else(|| panic!("unparseable: {text}"));
        let back = HeapSnapshot::from_json(&j).unwrap();
        assert_eq!(back, snap, "{text}");
        // And the rendering is canonical: serialize(parse(s)) == s.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn newer_schema_is_rejected() {
        let snap = sample();
        let bumped = snap.to_json().replace("\"heap_schema\":1", "\"heap_schema\":999");
        assert!(HeapSnapshot::from_json(&Json::parse(&bumped).unwrap()).is_none());
    }

    #[test]
    fn top_level_keys_match_the_contract() {
        let j = Json::parse(&sample().to_json()).unwrap();
        let Json::Obj(fields) = &j else { panic!("not an object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, HEAP_SNAPSHOT_KEYS);
    }

    #[test]
    fn human_report_mentions_the_load_and_best_swap() {
        let text = sample().render_human();
        assert!(text.contains("unique tables"), "{text}");
        assert!(text.contains("load 0.312"), "{text}");
        assert!(text.contains("best sift swap  : levels 0<->1 would drop 1 nodes"), "{text}");
    }
}
