//! Golden test pinning the JSON-lines trace schema.
//!
//! The trace format is a published contract (`v` field, required keys
//! per `kind`); external tooling may parse it. This test fails on any
//! change to the version number, a kind name, or the required key set
//! of a record — forcing a deliberate schema-version bump instead of a
//! silent break.

use smc_obs::{
    DumpMeta, Event, EventCtx, FixKind, HeapSnapshot, Json, Recorder, SpanKind, Telemetry,
    DUMP_SCHEMA_VERSION, HEAP_SCHEMA_VERSION, HEAP_SNAPSHOT_KEYS, SCHEMA_VERSION,
    STATUS_QUARANTINE_KEYS, STATUS_REQUIRED_KEYS, STATUS_SCHEMA_VERSION, STATUS_WORKER_KEYS,
};

/// The pinned contract: (kind, required keys beyond the common ones).
const GOLDEN: &[(&str, &[&str])] = &[
    ("span_start", &["span", "name"]),
    (
        "span_end",
        &[
            "span",
            "name",
            "wall_us",
            "live_nodes",
            "peak_nodes",
            "d_created",
            "d_lookups",
            "d_hits",
            "d_evictions",
            "d_gc_runs",
            "d_gc_reclaimed",
        ],
    ),
    (
        "fixpoint_iter",
        &[
            "phase",
            "iteration",
            "frontier_size",
            "approx_size",
            "live_nodes",
            "peak_nodes",
            "d_lookups",
            "d_hits",
        ],
    ),
    ("witness_hop", &["constraint", "ring"]),
    ("cycle_close", &["closed", "arc_len"]),
    ("restart", &["count", "stay_exit", "frontier"]),
    // `pause_us` is an optional key (absent in pre-0.6 traces).
    ("gc", &["reclaimed", "live_before", "live_after"]),
    (
        "heap_sample",
        &["live_nodes", "free_nodes", "widest_level", "widest_width", "table_len", "table_slots"],
    ),
    ("ladder", &["stage"]),
    ("trip", &["reason"]),
    ("diagnostic", &["code", "severity"]),
];

/// One representative of every event kind, in GOLDEN order.
fn representatives() -> Vec<Event> {
    vec![
        Event::SpanStart { id: 1, kind: SpanKind::Compile, label: Some("m.smv".into()) },
        Event::SpanEnd {
            id: 1,
            kind: SpanKind::Compile,
            wall_us: 10,
            live_nodes: 20,
            peak_nodes: 30,
            delta: Default::default(),
        },
        Event::FixpointIter {
            phase: FixKind::Eu,
            iteration: 1,
            frontier_size: 2,
            approx_size: 3,
            live_nodes: 4,
            peak_nodes: 5,
            d_lookups: 6,
            d_hits: 7,
        },
        Event::WitnessHop { constraint: 0, ring: 3 },
        Event::CycleClose { closed: false, arc_len: 0 },
        Event::Restart { count: 1, stay_exit: false, frontier: "10".into() },
        Event::Gc { reclaimed: 9, live_before: 19, live_after: 10, pause_us: 5 },
        Event::HeapSample {
            live_nodes: 120,
            free_nodes: 8,
            widest_level: 3,
            widest_width: 40,
            table_len: 118,
            table_slots: 256,
        },
        Event::Ladder { stage: "sift" },
        Event::Trip { reason: "node limit".into() },
        Event::Diagnostic { code: "E010".into(), severity: "error" },
    ]
}

#[test]
fn schema_version_is_pinned() {
    // Bumping this is a conscious act: update the golden table, the
    // event-module docs and DESIGN.md in the same change.
    assert_eq!(SCHEMA_VERSION, 1);
}

#[test]
fn every_kind_carries_the_golden_required_keys() {
    let ctx = EventCtx::new(42, 99);
    let events = representatives();
    assert_eq!(events.len(), GOLDEN.len(), "a kind is missing a representative");
    for (event, (kind, required)) in events.iter().zip(GOLDEN) {
        assert_eq!(event.kind_name(), *kind);
        let line = event.to_json_line(&ctx);
        let j = Json::parse(&line).unwrap_or_else(|| panic!("invalid JSON: {line}"));
        // Common keys, with their pinned values.
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION), "{line}");
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(42), "{line}");
        assert_eq!(j.get("t_us").and_then(Json::as_u64), Some(99), "{line}");
        assert_eq!(j.get("kind").and_then(Json::as_str), Some(*kind), "{line}");
        for key in *required {
            assert!(j.get(key).is_some(), "kind {kind}: missing required key {key}: {line}");
        }
    }
}

#[test]
fn span_name_vocabulary_is_pinned() {
    let names: Vec<&str> = smc_obs::SPAN_KINDS.iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        [
            "compile",
            "reach",
            "check",
            "check_eu",
            "check_eg",
            "fair_eg",
            "fair_rings",
            "witness",
            "lint",
        ]
    );
    for phase in [FixKind::Reach, FixKind::Eu, FixKind::Eg, FixKind::FairEgOuter] {
        assert!(
            ["reach", "eu", "eg", "fair_eg_outer"].contains(&phase.name()),
            "unexpected phase name {}",
            phase.name()
        );
    }
}

#[test]
fn optional_keys_default_when_absent() {
    // A pre-0.6 gc record without pause_us must still parse (as 0).
    let old = "{\"v\":1,\"seq\":0,\"t_us\":0,\"kind\":\"gc\",\"reclaimed\":3,\
               \"live_before\":10,\"live_after\":7}";
    let (_, event) = Event::from_json_line(old).expect("old gc record must parse");
    assert_eq!(event, Event::Gc { reclaimed: 3, live_before: 10, live_after: 7, pause_us: 0 });
}

#[test]
fn serve_metric_vocabulary_is_pinned() {
    // The serve/cache robustness series are part of the published metric
    // vocabulary: external scrape configs may reference these names, so
    // each must keep a HELP entry. Renaming one is a schema change.
    for name in [
        "smc_serve_requests_total",
        "smc_serve_request_wall_us",
        "smc_serve_queue_depth",
        "smc_serve_in_flight",
        "smc_serve_admitted_total",
        "smc_serve_rejected_total",
        "smc_serve_drains_total",
        "smc_serve_watchdog_trips_total",
        "smc_serve_quarantine_hits_total",
        "smc_serve_inflight_age_us",
        "smc_recorder_events_total",
        "smc_recorder_dropped_total",
        "smc_recorder_dumps_total",
        "smc_batch_cache_evictions_total",
        "smc_batch_cache_corrupt_total",
        "smc_bdd_level_nodes",
        "smc_bdd_table_load",
        "smc_bdd_longest_probe",
        "smc_bdd_probe_length",
    ] {
        assert!(
            smc_obs::metric_help(name).is_some(),
            "metric {name} lost its HELP entry (vocabulary is append-only)"
        );
    }
    assert!(smc_obs::metric_help("smc_serve_not_a_metric").is_none());
}

/// The pinned required keys of a black-box dump's header line. Fields
/// are append-only; removing or re-typing one bumps DUMP_SCHEMA_VERSION.
const DUMP_HEADER_KEYS: &[&str] =
    &["dump_schema", "trace_id", "job", "worker", "reason", "captured", "dropped", "events"];

#[test]
fn dump_file_format_is_pinned() {
    assert_eq!(DUMP_SCHEMA_VERSION, 1);
    let rec = Recorder::new(8);
    let tele = Telemetry::new();
    tele.set_trace("deadbeef01234567", 3);
    tele.add_sink(Box::new(rec.clone()));
    tele.emit(Event::WitnessHop { constraint: 1, ring: 2 });
    tele.emit(Event::Trip { reason: "node limit".into() });
    let dump = rec.dump_jsonl(&DumpMeta {
        trace_id: "deadbeef01234567",
        job: "mutex.smv",
        worker: 3,
        reason: "exhausted: node limit",
    });
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), 3, "header + 2 events: {dump}");
    let head = Json::parse(lines[0]).unwrap_or_else(|| panic!("invalid header: {}", lines[0]));
    for key in DUMP_HEADER_KEYS {
        assert!(head.get(key).is_some(), "dump header lost required key {key}: {}", lines[0]);
    }
    assert_eq!(head.get("dump_schema").and_then(Json::as_u64), Some(DUMP_SCHEMA_VERSION));
    assert_eq!(head.get("trace_id").and_then(Json::as_str), Some("deadbeef01234567"));
    assert_eq!(head.get("worker").and_then(Json::as_u64), Some(3));
    assert_eq!(head.get("events").and_then(Json::as_u64), Some(2));
    // Body lines are ordinary schema-v1 trace records carrying the
    // optional trace keys, so every existing trace tool can read them.
    for line in &lines[1..] {
        let j = Json::parse(line).unwrap_or_else(|| panic!("invalid event: {line}"));
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION), "{line}");
        assert_eq!(j.get("trace_id").and_then(Json::as_str), Some("deadbeef01234567"), "{line}");
        assert_eq!(j.get("worker").and_then(Json::as_u64), Some(3), "{line}");
        let (ctx, _) = Event::from_json_line(line).unwrap_or_else(|| panic!("unparsable: {line}"));
        assert!(ctx.trace.is_some(), "{line}");
    }
}

#[test]
fn status_snapshot_vocabulary_is_pinned() {
    // Bumping the status schema is a conscious act: update the key
    // tables, the serve docs and DESIGN.md §13 in the same change.
    assert_eq!(STATUS_SCHEMA_VERSION, 1);
    assert_eq!(
        STATUS_REQUIRED_KEYS,
        [
            "status_schema",
            "draining",
            "queue_depth",
            "in_flight",
            "served",
            "rejected",
            "workers",
            "quarantine",
            "cache",
        ]
    );
    // v1.1 appended the two heap keys; appends do not bump the schema.
    assert_eq!(
        STATUS_WORKER_KEYS,
        ["slot", "name", "trace_id", "elapsed_us", "phase", "live_nodes", "widest_level"]
    );
    assert_eq!(STATUS_QUARANTINE_KEYS, ["source", "strikes", "diagnostic"]);
}

#[test]
fn heap_snapshot_vocabulary_is_pinned() {
    // Bumping the heap schema is a conscious act: update the key table,
    // `smc inspect` docs and DESIGN.md §15 in the same change.
    assert_eq!(HEAP_SCHEMA_VERSION, 1);
    assert_eq!(
        HEAP_SNAPSHOT_KEYS,
        [
            "heap_schema",
            "live_nodes",
            "terminals",
            "free_nodes",
            "peak_nodes",
            "dead_ratio",
            "sharing_factor",
            "levels",
            "widest",
            "unique",
            "computed",
            "sift",
        ]
    );
    // A rendered snapshot carries every required key, stamped with the
    // version, and the keys appear in the pinned order.
    let snapshot = HeapSnapshot {
        live_nodes: 7,
        terminals: 2,
        free_nodes: 1,
        peak_nodes: 9,
        dead_ratio: 1.0 / 6.0,
        sharing_factor: 1.2,
        levels: vec![],
        widest: vec![],
        unique: smc_obs::HeapUnique {
            entries: 5,
            slots: 16,
            load: 5.0 / 16.0,
            longest_probe: 1,
            probe_hist: vec![4, 1],
        },
        computed: smc_obs::HeapComputed {
            capacity: 64,
            live: 3,
            occupancy: 3.0 / 64.0,
            ops: vec![],
        },
        sift: vec![],
    };
    let rendered = snapshot.to_json();
    let j = Json::parse(&rendered).unwrap_or_else(|| panic!("invalid JSON: {rendered}"));
    assert_eq!(j.get("heap_schema").and_then(Json::as_u64), Some(HEAP_SCHEMA_VERSION));
    let mut at = 0;
    for key in HEAP_SNAPSHOT_KEYS {
        assert!(j.get(key).is_some(), "snapshot lost required key {key}: {rendered}");
        let pos = rendered.find(&format!("\"{key}\":")).expect("key rendered");
        assert!(pos >= at, "key {key} out of pinned order: {rendered}");
        at = pos;
    }
    // And it round-trips through the parser.
    assert_eq!(HeapSnapshot::from_json(&j), Some(snapshot));
}

#[test]
fn dump_header_carries_the_last_heap_sample() {
    let rec = Recorder::new(2);
    let tele = Telemetry::new();
    tele.set_trace("feedface00000000", 1);
    tele.add_sink(Box::new(rec.clone()));
    tele.emit(Event::HeapSample {
        live_nodes: 120,
        free_nodes: 8,
        widest_level: 3,
        widest_width: 40,
        table_len: 118,
        table_slots: 256,
    });
    // Flood the two-slot ring: the header's heap brief must survive the
    // overwrites, because it is tracked outside the ring.
    for ring in 0..8 {
        tele.emit(Event::WitnessHop { constraint: 0, ring });
    }
    let dump = rec.dump_jsonl(&DumpMeta {
        trace_id: "feedface00000000",
        job: "m.smv",
        worker: 1,
        reason: "panic",
    });
    let head = Json::parse(dump.lines().next().expect("header")).expect("valid header");
    let heap = head.get("heap").expect("header heap key (append-only addition)");
    assert_eq!(heap.get("live_nodes").and_then(Json::as_u64), Some(120));
    assert_eq!(heap.get("widest_level").and_then(Json::as_u64), Some(3));
    assert_eq!(heap.get("table_slots").and_then(Json::as_u64), Some(256));
}

#[test]
fn trace_context_keys_are_optional_common_keys() {
    // A record with the trace keys parses; one without them parses to a
    // tag-less context — both directions of the 0.9 compat contract.
    let tagged = "{\"v\":1,\"seq\":0,\"t_us\":5,\"trace_id\":\"ab12\",\"worker\":2,\
                  \"kind\":\"witness_hop\",\"constraint\":0,\"ring\":1}";
    let (ctx, _) = Event::from_json_line(tagged).expect("tagged record must parse");
    let tag = ctx.trace.expect("trace tag must survive the roundtrip");
    assert_eq!((&*tag.trace_id, tag.worker), ("ab12", 2));
    let bare =
        "{\"v\":1,\"seq\":0,\"t_us\":5,\"kind\":\"witness_hop\",\"constraint\":0,\"ring\":1}";
    let (ctx, _) = Event::from_json_line(bare).expect("bare record must parse");
    assert!(ctx.trace.is_none());
}

#[test]
fn newer_schema_versions_are_rejected() {
    let line = format!(
        "{{\"v\":{},\"seq\":0,\"t_us\":0,\"kind\":\"witness_hop\",\"constraint\":0,\"ring\":0}}",
        SCHEMA_VERSION + 1
    );
    assert!(Event::from_json_line(&line).is_none());
    // Unknown keys in a current-version record must be ignored.
    let with_extra =
        "{\"v\":1,\"seq\":0,\"t_us\":0,\"kind\":\"witness_hop\",\"constraint\":0,\"ring\":0,\"future\":\"x\"}";
    assert!(Event::from_json_line(with_extra).is_some());
}
