//! Golden test pinning the JSON-lines trace schema.
//!
//! The trace format is a published contract (`v` field, required keys
//! per `kind`); external tooling may parse it. This test fails on any
//! change to the version number, a kind name, or the required key set
//! of a record — forcing a deliberate schema-version bump instead of a
//! silent break.

use smc_obs::{Event, EventCtx, FixKind, Json, SpanKind, SCHEMA_VERSION};

/// The pinned contract: (kind, required keys beyond the common ones).
const GOLDEN: &[(&str, &[&str])] = &[
    ("span_start", &["span", "name"]),
    (
        "span_end",
        &[
            "span",
            "name",
            "wall_us",
            "live_nodes",
            "peak_nodes",
            "d_created",
            "d_lookups",
            "d_hits",
            "d_evictions",
            "d_gc_runs",
            "d_gc_reclaimed",
        ],
    ),
    (
        "fixpoint_iter",
        &[
            "phase",
            "iteration",
            "frontier_size",
            "approx_size",
            "live_nodes",
            "peak_nodes",
            "d_lookups",
            "d_hits",
        ],
    ),
    ("witness_hop", &["constraint", "ring"]),
    ("cycle_close", &["closed", "arc_len"]),
    ("restart", &["count", "stay_exit", "frontier"]),
    // `pause_us` is an optional key (absent in pre-0.6 traces).
    ("gc", &["reclaimed", "live_before", "live_after"]),
    ("ladder", &["stage"]),
    ("trip", &["reason"]),
    ("diagnostic", &["code", "severity"]),
];

/// One representative of every event kind, in GOLDEN order.
fn representatives() -> Vec<Event> {
    vec![
        Event::SpanStart { id: 1, kind: SpanKind::Compile, label: Some("m.smv".into()) },
        Event::SpanEnd {
            id: 1,
            kind: SpanKind::Compile,
            wall_us: 10,
            live_nodes: 20,
            peak_nodes: 30,
            delta: Default::default(),
        },
        Event::FixpointIter {
            phase: FixKind::Eu,
            iteration: 1,
            frontier_size: 2,
            approx_size: 3,
            live_nodes: 4,
            peak_nodes: 5,
            d_lookups: 6,
            d_hits: 7,
        },
        Event::WitnessHop { constraint: 0, ring: 3 },
        Event::CycleClose { closed: false, arc_len: 0 },
        Event::Restart { count: 1, stay_exit: false, frontier: "10".into() },
        Event::Gc { reclaimed: 9, live_before: 19, live_after: 10, pause_us: 5 },
        Event::Ladder { stage: "sift" },
        Event::Trip { reason: "node limit".into() },
        Event::Diagnostic { code: "E010".into(), severity: "error" },
    ]
}

#[test]
fn schema_version_is_pinned() {
    // Bumping this is a conscious act: update the golden table, the
    // event-module docs and DESIGN.md in the same change.
    assert_eq!(SCHEMA_VERSION, 1);
}

#[test]
fn every_kind_carries_the_golden_required_keys() {
    let ctx = EventCtx { seq: 42, t_us: 99 };
    let events = representatives();
    assert_eq!(events.len(), GOLDEN.len(), "a kind is missing a representative");
    for (event, (kind, required)) in events.iter().zip(GOLDEN) {
        assert_eq!(event.kind_name(), *kind);
        let line = event.to_json_line(&ctx);
        let j = Json::parse(&line).unwrap_or_else(|| panic!("invalid JSON: {line}"));
        // Common keys, with their pinned values.
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION), "{line}");
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(42), "{line}");
        assert_eq!(j.get("t_us").and_then(Json::as_u64), Some(99), "{line}");
        assert_eq!(j.get("kind").and_then(Json::as_str), Some(*kind), "{line}");
        for key in *required {
            assert!(j.get(key).is_some(), "kind {kind}: missing required key {key}: {line}");
        }
    }
}

#[test]
fn span_name_vocabulary_is_pinned() {
    let names: Vec<&str> = smc_obs::SPAN_KINDS.iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        [
            "compile",
            "reach",
            "check",
            "check_eu",
            "check_eg",
            "fair_eg",
            "fair_rings",
            "witness",
            "lint",
        ]
    );
    for phase in [FixKind::Reach, FixKind::Eu, FixKind::Eg, FixKind::FairEgOuter] {
        assert!(
            ["reach", "eu", "eg", "fair_eg_outer"].contains(&phase.name()),
            "unexpected phase name {}",
            phase.name()
        );
    }
}

#[test]
fn optional_keys_default_when_absent() {
    // A pre-0.6 gc record without pause_us must still parse (as 0).
    let old = "{\"v\":1,\"seq\":0,\"t_us\":0,\"kind\":\"gc\",\"reclaimed\":3,\
               \"live_before\":10,\"live_after\":7}";
    let (_, event) = Event::from_json_line(old).expect("old gc record must parse");
    assert_eq!(event, Event::Gc { reclaimed: 3, live_before: 10, live_after: 7, pause_us: 0 });
}

#[test]
fn serve_metric_vocabulary_is_pinned() {
    // The serve/cache robustness series are part of the published metric
    // vocabulary: external scrape configs may reference these names, so
    // each must keep a HELP entry. Renaming one is a schema change.
    for name in [
        "smc_serve_requests_total",
        "smc_serve_request_wall_us",
        "smc_serve_queue_depth",
        "smc_serve_in_flight",
        "smc_serve_admitted_total",
        "smc_serve_rejected_total",
        "smc_serve_drains_total",
        "smc_serve_watchdog_trips_total",
        "smc_serve_quarantine_hits_total",
        "smc_batch_cache_evictions_total",
        "smc_batch_cache_corrupt_total",
    ] {
        assert!(
            smc_obs::metric_help(name).is_some(),
            "metric {name} lost its HELP entry (vocabulary is append-only)"
        );
    }
    assert!(smc_obs::metric_help("smc_serve_not_a_metric").is_none());
}

#[test]
fn newer_schema_versions_are_rejected() {
    let line = format!(
        "{{\"v\":{},\"seq\":0,\"t_us\":0,\"kind\":\"witness_hop\",\"constraint\":0,\"ring\":0}}",
        SCHEMA_VERSION + 1
    );
    assert!(Event::from_json_line(&line).is_none());
    // Unknown keys in a current-version record must be ignored.
    let with_extra =
        "{\"v\":1,\"seq\":0,\"t_us\":0,\"kind\":\"witness_hop\",\"constraint\":0,\"ring\":0,\"future\":\"x\"}";
    assert!(Event::from_json_line(with_extra).is_some());
}
