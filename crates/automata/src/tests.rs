//! Tests for ω-automata, word acceptance, and language containment.

use crate::automaton::{Acceptance, OmegaAutomaton};
use crate::containment::{check_containment, product_model, ContainmentOutcome};
use crate::error::AutomatonError;
use crate::run::accepts;
use crate::word::OmegaWord;

const A: usize = 0;
const B: usize = 1;

fn ab_alphabet() -> Vec<String> {
    vec!["a".into(), "b".into()]
}

/// Deterministic Büchi automaton accepting "infinitely many a":
/// state 1 is entered on every `a`.
fn inf_a() -> OmegaAutomaton {
    let mut k = OmegaAutomaton::new(2, 0, ab_alphabet());
    for s in 0..2 {
        k.add_transition(s, A, 1);
        k.add_transition(s, B, 0);
    }
    k.set_acceptance(Acceptance::buchi([1]));
    k
}

/// Deterministic Büchi automaton accepting "infinitely many b".
fn inf_b() -> OmegaAutomaton {
    let mut k = OmegaAutomaton::new(2, 0, ab_alphabet());
    for s in 0..2 {
        k.add_transition(s, B, 1);
        k.add_transition(s, A, 0);
    }
    k.set_acceptance(Acceptance::buchi([1]));
    k
}

/// Deterministic automaton whose *structure* only allows `(a b)^ω`:
/// extra letters go to a rejecting sink.
fn alternating_ab() -> OmegaAutomaton {
    let mut k = OmegaAutomaton::new(3, 0, ab_alphabet());
    k.add_transition(0, A, 1);
    k.add_transition(0, B, 2);
    k.add_transition(1, B, 0);
    k.add_transition(1, A, 2);
    k.add_transition(2, A, 2);
    k.add_transition(2, B, 2);
    k.set_acceptance(Acceptance::buchi([0, 1]));
    k
}

// ---------------------------------------------------------------------
// Automaton structure
// ---------------------------------------------------------------------

#[test]
fn determinism_and_completeness_checks() {
    let k = inf_a();
    assert!(k.is_deterministic());
    assert!(k.is_complete());
    let mut nd = OmegaAutomaton::new(2, 0, ab_alphabet());
    nd.add_transition(0, A, 0);
    nd.add_transition(0, A, 1);
    assert!(!nd.is_deterministic());
    assert!(!nd.is_complete());
}

#[test]
fn complete_with_sink_adds_one_state() {
    let mut k = OmegaAutomaton::new(1, 0, ab_alphabet());
    k.add_transition(0, A, 0);
    assert!(!k.is_complete());
    let sink = k.complete_with_sink().expect("sink added");
    assert_eq!(sink, 1);
    assert!(k.is_complete());
    assert_eq!(k.successors(0, B), &[1]);
    assert_eq!(k.successors(1, A), &[1]);
    // Already complete: no-op.
    assert_eq!(k.complete_with_sink(), None);
}

#[test]
fn symbol_lookup() {
    let k = inf_a();
    assert_eq!(k.symbol("a"), Some(A));
    assert_eq!(k.symbol("b"), Some(B));
    assert_eq!(k.symbol("c"), None);
}

// ---------------------------------------------------------------------
// Word acceptance
// ---------------------------------------------------------------------

#[test]
fn buchi_acceptance_on_lasso_words() {
    let k = inf_a();
    // (a)^ω: infinitely many a -> accepted.
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A])));
    // b (b)^ω: no a at all -> rejected.
    assert!(!accepts(&k, &OmegaWord::new(vec![B], vec![B])));
    // a a a (b)^ω: finitely many a -> rejected.
    assert!(!accepts(&k, &OmegaWord::new(vec![A, A, A], vec![B])));
    // (a b)^ω -> accepted.
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A, B])));
}

#[test]
fn streett_acceptance_on_lasso_words() {
    // Streett pair (U = states seen on b, V = states seen on a):
    // "if b infinitely often then a infinitely often" — encode over
    // inf_a's structure: U = {0}? Use a direct small example instead:
    // two states toggled by the letters, pair ({0}, {1}):
    // inf ⊆ {0} (eventually only b-state) or inf ∩ {1} ≠ ∅ (a i.o.).
    let mut k = inf_a();
    k.set_acceptance(Acceptance::streett([(vec![0], vec![1])]));
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A]))); // a i.o.
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![B]))); // stays in {0}
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A, B]))); // a i.o.
}

#[test]
fn rabin_acceptance_on_lasso_words() {
    // Rabin pair (U = {0}, V = {1}) on inf_a's structure: accept iff
    // the run avoids state 0 eventually AND hits state 1 i.o. — that is
    // "eventually only a".
    let mut k = inf_a();
    k.set_acceptance(Acceptance::rabin([(vec![0], vec![1])]));
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A])));
    assert!(accepts(&k, &OmegaWord::new(vec![B, B], vec![A])));
    assert!(!accepts(&k, &OmegaWord::new(vec![], vec![A, B])));
    assert!(!accepts(&k, &OmegaWord::new(vec![], vec![B])));
}

#[test]
fn muller_acceptance_on_lasso_words() {
    // Muller family {{0, 1}} on inf_a's structure: the run must visit
    // both states infinitely often — i.e. both letters infinitely often.
    let mut k = inf_a();
    k.set_acceptance(Acceptance::muller([vec![0, 1]]));
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A, B])));
    assert!(!accepts(&k, &OmegaWord::new(vec![], vec![A])));
    assert!(!accepts(&k, &OmegaWord::new(vec![], vec![B])));
}

#[test]
fn nondeterministic_acceptance_searches_all_runs() {
    // Nondeterministic Büchi: on `a` guess to stay or jump to the
    // accepting loop that only reads `a`.
    let mut k = OmegaAutomaton::new(2, 0, ab_alphabet());
    k.add_transition(0, A, 0);
    k.add_transition(0, B, 0);
    k.add_transition(0, A, 1);
    k.add_transition(1, A, 1);
    // State 1 has no b-transition: runs die there on b.
    k.complete_with_sink();
    k.set_acceptance(Acceptance::buchi([1]));
    // (a)^ω accepted via the guess; (a b)^ω only by staying in 0 — not
    // accepting.
    assert!(accepts(&k, &OmegaWord::new(vec![], vec![A])));
    assert!(!accepts(&k, &OmegaWord::new(vec![], vec![A, B])));
}

// ---------------------------------------------------------------------
// Product construction
// ---------------------------------------------------------------------

#[test]
fn product_is_total_and_labeled() {
    let k = inf_a();
    let kp = inf_b();
    let (product, pairs) = product_model(&k, &kp).expect("well-formed");
    assert!(product.is_total());
    assert_eq!(product.num_states(), pairs.len());
    // Labels identify the projections.
    for (i, (s, sp)) in pairs.iter().enumerate() {
        let sys_ap = product.ap_id(&format!("sys_{s}")).unwrap();
        let spec_ap = product.ap_id(&format!("spec_{sp}")).unwrap();
        assert!(product.holds(i, sys_ap));
        assert!(product.holds(i, spec_ap));
    }
}

#[test]
fn product_rejects_malformed_inputs() {
    let k = inf_a();
    let mut other_alphabet = OmegaAutomaton::new(1, 0, vec!["x".into()]);
    other_alphabet.add_transition(0, 0, 0);
    assert_eq!(product_model(&k, &other_alphabet).unwrap_err(), AutomatonError::AlphabetMismatch);
    let mut nd = OmegaAutomaton::new(2, 0, ab_alphabet());
    for s in 0..2 {
        nd.add_transition(s, A, 0);
        nd.add_transition(s, A, 1);
        nd.add_transition(s, B, 0);
    }
    assert_eq!(product_model(&k, &nd).unwrap_err(), AutomatonError::SpecNotDeterministic);
    let mut incomplete = OmegaAutomaton::new(1, 0, ab_alphabet());
    incomplete.add_transition(0, A, 0);
    assert_eq!(product_model(&incomplete, &k).unwrap_err(), AutomatonError::NotComplete("system"));
    assert_eq!(
        product_model(&k, &incomplete).unwrap_err(),
        AutomatonError::NotComplete("specification")
    );
}

// ---------------------------------------------------------------------
// Containment (the Section 8 pipeline)
// ---------------------------------------------------------------------

#[test]
fn containment_fails_with_validated_word() {
    // L(inf a) ⊄ L(inf b): e.g. (a)^ω has infinitely many a but not b.
    let k = inf_a();
    let kp = inf_b();
    match check_containment(&k, &kp).expect("runs") {
        ContainmentOutcome::Fails { word, run, loopback } => {
            assert!(accepts(&k, &word), "word in L(K)");
            assert!(!accepts(&kp, &word), "word not in L(K')");
            assert!(loopback < run.len());
        }
        ContainmentOutcome::Holds => panic!("containment should fail"),
    }
}

#[test]
fn containment_holds_for_sublanguage() {
    // The alternating (a b)^ω language has infinitely many a: contained
    // in L(inf a).
    let k = alternating_ab();
    let kp = inf_a();
    assert_eq!(check_containment(&k, &kp).expect("runs"), ContainmentOutcome::Holds);
}

#[test]
fn containment_reflexive() {
    let k = inf_a();
    assert_eq!(check_containment(&k, &k).expect("runs"), ContainmentOutcome::Holds);
}

#[test]
fn containment_with_streett_spec() {
    // Spec (Streett): "if state 1 visited i.o. then state 1 visited
    // i.o." — a tautological pair, so the spec accepts everything;
    // containment must hold.
    let k = inf_a();
    let mut kp = inf_b();
    kp.set_acceptance(Acceptance::streett([(vec![0usize; 0], vec![0, 1])]));
    // pair (∅, {0,1}): inf ∩ {0,1} ≠ ∅ always true.
    assert_eq!(check_containment(&k, &kp).expect("runs"), ContainmentOutcome::Holds);

    // Now a falsifiable Streett spec: inf ⊆ {1} ∨ inf ∩ ∅ ≠ ∅, i.e.
    // "eventually only b-successor states" on inf_b's structure —
    // violated by words with infinitely many a.
    let mut kp2 = inf_b();
    kp2.set_acceptance(Acceptance::streett([(vec![1], vec![0usize; 0])]));
    match check_containment(&k, &kp2).expect("runs") {
        ContainmentOutcome::Fails { word, .. } => {
            assert!(accepts(&k, &word));
            assert!(!accepts(&kp2, &word));
        }
        ContainmentOutcome::Holds => panic!("should fail"),
    }
}

#[test]
fn containment_with_rabin_spec() {
    // Rabin spec on inf_b structure, pair (U={1}, V={0}): accept iff
    // eventually no b and infinitely many a — rejected by e.g. (b)^ω,
    // which inf_a does not accept... pick system = inf_a: (a)^ω is
    // accepted by both; (a b)^ω accepted by system, rejected by spec.
    let k = inf_a();
    let mut kp = inf_b();
    kp.set_acceptance(Acceptance::rabin([(vec![1], vec![0])]));
    match check_containment(&k, &kp).expect("runs") {
        ContainmentOutcome::Fails { word, .. } => {
            assert!(accepts(&k, &word));
            assert!(!accepts(&kp, &word));
        }
        ContainmentOutcome::Holds => panic!("should fail"),
    }
}

#[test]
fn containment_with_nondeterministic_system() {
    // Nondeterministic system accepting "eventually only a" by guessing
    // the switch point; spec "infinitely many a" contains it.
    let mut k = OmegaAutomaton::new(2, 0, ab_alphabet());
    k.add_transition(0, A, 0);
    k.add_transition(0, B, 0);
    k.add_transition(0, A, 1);
    k.add_transition(1, A, 1);
    k.complete_with_sink();
    k.set_acceptance(Acceptance::buchi([1]));
    let kp = inf_a();
    assert_eq!(check_containment(&k, &kp).expect("runs"), ContainmentOutcome::Holds);
    // The reverse direction fails: "infinitely many a" ⊄ "eventually
    // only a". (The spec side must be deterministic, so "eventually only
    // a" is expressed as a deterministic Rabin automaton.) The
    // counterexample word must contain b's forever.
    let mut det_fin_b = inf_b();
    det_fin_b.set_acceptance(Acceptance::rabin([(vec![1], vec![0])]));
    match check_containment(&kp, &det_fin_b).expect("runs") {
        ContainmentOutcome::Fails { word, .. } => {
            assert!(accepts(&kp, &word));
            assert!(!accepts(&det_fin_b, &word));
            assert!(word.cycle.contains(&B));
        }
        ContainmentOutcome::Holds => panic!("should fail"),
    }
}

#[test]
fn containment_with_rabin_system() {
    // Rabin system: "eventually only a" on inf_b's structure (pair
    // U = {1}, V = {0}). Spec "infinitely many a" contains it.
    let mut k = inf_b();
    k.set_acceptance(Acceptance::rabin([(vec![1], vec![0])]));
    let kp = inf_a();
    assert_eq!(check_containment(&k, &kp).expect("runs"), ContainmentOutcome::Holds);
    // But the spec "infinitely many b" does not contain it.
    let kp2 = inf_b();
    match check_containment(&k, &kp2).expect("runs") {
        ContainmentOutcome::Fails { word, .. } => {
            assert!(accepts(&k, &word));
            assert!(!accepts(&kp2, &word));
        }
        ContainmentOutcome::Holds => panic!("should fail"),
    }
}

#[test]
fn containment_with_multi_pair_rabin_system() {
    // Rabin system accepting "eventually only a" OR "eventually only b"
    // (two pairs); the spec "infinitely many a" does NOT contain it
    // (the eventually-only-b branch violates it).
    let mut k = inf_b();
    k.set_acceptance(Acceptance::rabin([
        (vec![1], vec![0]), // avoid b-state forever, a i.o.
        (vec![0], vec![1]), // avoid a-state forever, b i.o.
    ]));
    let kp = inf_a();
    match check_containment(&k, &kp).expect("runs") {
        ContainmentOutcome::Fails { word, .. } => {
            assert!(accepts(&k, &word));
            assert!(!accepts(&kp, &word));
        }
        ContainmentOutcome::Holds => panic!("should fail via the only-b branch"),
    }
}

#[test]
fn muller_spec_is_rejected() {
    let k = inf_a();
    let mut kp = inf_b();
    kp.set_acceptance(Acceptance::muller([vec![0, 1]]));
    assert!(matches!(check_containment(&k, &kp), Err(AutomatonError::UnsupportedAcceptance(_))));
}

// ---------------------------------------------------------------------
// Words
// ---------------------------------------------------------------------

#[test]
fn word_indexing_and_rendering() {
    let w = OmegaWord::new(vec![A, B], vec![B, A]);
    assert_eq!(w.symbol_at(0), A);
    assert_eq!(w.symbol_at(1), B);
    assert_eq!(w.symbol_at(2), B);
    assert_eq!(w.symbol_at(3), A);
    assert_eq!(w.symbol_at(4), B); // wrapped
    assert_eq!(w.len(), 4);
    assert_eq!(w.render(&ab_alphabet()), "a b (b a)^ω");
    assert_eq!(format!("{w}"), "0 1 (1 0)^ω");
    let pure = OmegaWord::new(vec![], vec![A]);
    assert_eq!(pure.render(&ab_alphabet()), "(a)^ω");
}

#[test]
#[should_panic(expected = "period of an ω-word")]
fn empty_cycle_is_rejected() {
    let _ = OmegaWord::new(vec![A], vec![]);
}
