//! ω-automata over finite alphabets.

use std::collections::BTreeSet;

use crate::error::AutomatonError;

/// A state set in an acceptance condition.
pub(crate) type StateSet = BTreeSet<usize>;

/// Acceptance conditions over the infinitary set `inf(r)` of a run `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acceptance {
    /// Büchi: `inf(r) ∩ F ≠ ∅`.
    Buchi(StateSet),
    /// Streett: `∀(U, V) ∈ F: inf(r) ⊆ U ∨ inf(r) ∩ V ≠ ∅`.
    Streett(Vec<(StateSet, StateSet)>),
    /// Rabin: `∃(U, V) ∈ F: inf(r) ∩ U = ∅ ∧ inf(r) ∩ V ≠ ∅`.
    Rabin(Vec<(StateSet, StateSet)>),
    /// Muller: `inf(r) ∈ F` (exact match).
    Muller(Vec<StateSet>),
}

impl Acceptance {
    /// Büchi acceptance from accepting states.
    pub fn buchi<I: IntoIterator<Item = usize>>(accepting: I) -> Acceptance {
        Acceptance::Buchi(accepting.into_iter().collect())
    }

    /// Streett acceptance from `(U, V)` pairs.
    pub fn streett<I, U, V>(pairs: I) -> Acceptance
    where
        I: IntoIterator<Item = (U, V)>,
        U: IntoIterator<Item = usize>,
        V: IntoIterator<Item = usize>,
    {
        Acceptance::Streett(
            pairs
                .into_iter()
                .map(|(u, v)| (u.into_iter().collect(), v.into_iter().collect()))
                .collect(),
        )
    }

    /// Rabin acceptance from `(U, V)` pairs.
    pub fn rabin<I, U, V>(pairs: I) -> Acceptance
    where
        I: IntoIterator<Item = (U, V)>,
        U: IntoIterator<Item = usize>,
        V: IntoIterator<Item = usize>,
    {
        Acceptance::Rabin(
            pairs
                .into_iter()
                .map(|(u, v)| (u.into_iter().collect(), v.into_iter().collect()))
                .collect(),
        )
    }

    /// Muller acceptance from the family of exact infinitary sets.
    pub fn muller<I, S>(family: I) -> Acceptance
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = usize>,
    {
        Acceptance::Muller(family.into_iter().map(|s| s.into_iter().collect()).collect())
    }
}

/// A (nondeterministic) ω-automaton `K = (S, s₀, Σ, Δ, F)` with one of
/// the [`Acceptance`] conditions.
///
/// Symbols are dense indices into the alphabet name table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaAutomaton {
    num_states: usize,
    initial: usize,
    alphabet: Vec<String>,
    /// `delta[state][symbol]` — successor list.
    delta: Vec<Vec<Vec<usize>>>,
    acceptance: Acceptance,
}

impl OmegaAutomaton {
    /// Creates an automaton with no transitions and empty Büchi
    /// acceptance (no accepting states).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range or the alphabet is empty.
    pub fn new(num_states: usize, initial: usize, alphabet: Vec<String>) -> OmegaAutomaton {
        assert!(initial < num_states, "initial state out of range");
        assert!(!alphabet.is_empty(), "alphabet must be nonempty");
        OmegaAutomaton {
            num_states,
            initial,
            delta: vec![vec![Vec::new(); alphabet.len()]; num_states],
            alphabet,
            acceptance: Acceptance::Buchi(StateSet::new()),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The alphabet symbol names.
    pub fn alphabet(&self) -> &[String] {
        &self.alphabet
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<usize> {
        self.alphabet.iter().position(|s| s == name)
    }

    /// The acceptance condition.
    pub fn acceptance(&self) -> &Acceptance {
        &self.acceptance
    }

    /// Replaces the acceptance condition.
    pub fn set_acceptance(&mut self, acceptance: Acceptance) {
        self.acceptance = acceptance;
    }

    /// Adds the transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn add_transition(&mut self, from: usize, symbol: usize, to: usize) {
        assert!(from < self.num_states && to < self.num_states, "state out of range");
        assert!(symbol < self.alphabet.len(), "symbol out of range");
        let bucket = &mut self.delta[from][symbol];
        if !bucket.contains(&to) {
            bucket.push(to);
        }
    }

    /// Successors of `state` on `symbol`.
    pub fn successors(&self, state: usize, symbol: usize) -> &[usize] {
        &self.delta[state][symbol]
    }

    /// Is the automaton deterministic (at most one successor per state
    /// and symbol)?
    pub fn is_deterministic(&self) -> bool {
        self.delta.iter().all(|row| row.iter().all(|b| b.len() <= 1))
    }

    /// Is the automaton complete (at least one successor per state and
    /// symbol)?
    pub fn is_complete(&self) -> bool {
        self.delta.iter().all(|row| row.iter().all(|b| !b.is_empty()))
    }

    /// Completes the automaton by routing missing transitions to a fresh
    /// rejecting sink state (added only if needed). Returns the sink's
    /// index if one was added.
    ///
    /// The sink is rejecting for Büchi/Rabin/Muller by construction (it
    /// joins no acceptance set); for Streett it is added to no `V` set,
    /// so runs trapped in the sink are rejected only if some `U` excludes
    /// it — callers completing Streett automata should confirm the
    /// intended semantics.
    pub fn complete_with_sink(&mut self) -> Option<usize> {
        if self.is_complete() {
            return None;
        }
        let sink = self.num_states;
        self.num_states += 1;
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        for row in &mut self.delta {
            for bucket in row.iter_mut() {
                if bucket.is_empty() {
                    bucket.push(sink);
                }
            }
        }
        Some(sink)
    }

    /// The acceptance expressed as Streett pairs, when possible:
    /// Büchi `F` becomes the single pair `(∅, F)`; Streett is returned
    /// as-is.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnsupportedAcceptance`] for Rabin and Muller
    /// (their Streett forms are exponential / not expressible; Rabin
    /// *system-side* acceptance is still supported by the containment
    /// check through [`acceptance_alternatives`](Self::acceptance_alternatives)).
    pub fn streett_pairs(&self) -> Result<Vec<(StateSet, StateSet)>, AutomatonError> {
        match &self.acceptance {
            Acceptance::Buchi(f) => Ok(vec![(StateSet::new(), f.clone())]),
            Acceptance::Streett(pairs) => Ok(pairs.clone()),
            Acceptance::Rabin(_) => Err(AutomatonError::UnsupportedAcceptance(
                "Rabin system-side acceptance (use Streett or Büchi)",
            )),
            Acceptance::Muller(_) => Err(AutomatonError::UnsupportedAcceptance(
                "Muller system-side acceptance (use Streett or Büchi)",
            )),
        }
    }

    /// The acceptance as a *disjunction of conjunctions* of
    /// `GF p ∨ FG q` obligations — each inner vector a fairness-class
    /// conjunct list, the whole acceptance their union:
    ///
    /// - Büchi / Streett: one alternative (their Streett pairs, each
    ///   mapped to `FG(U) ∨ GF(V)`),
    /// - Rabin: one alternative per pair `(U, V)`, namely
    ///   `FG(Ū) ∧ GF(V)` (avoid `U` forever and hit `V` infinitely
    ///   often) — `E` distributes over the path-level disjunction, so
    ///   the containment check simply tries each alternative.
    ///
    /// Each obligation is returned as `(gf, fg)` with absent sides
    /// `None`.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnsupportedAcceptance`] for Muller acceptance.
    #[allow(clippy::type_complexity)]
    pub fn acceptance_alternatives(
        &self,
    ) -> Result<Vec<Vec<(Option<StateSet>, Option<StateSet>)>>, AutomatonError> {
        let all: StateSet = (0..self.num_states).collect();
        match &self.acceptance {
            Acceptance::Buchi(_) | Acceptance::Streett(_) => {
                let pairs = self.streett_pairs()?;
                Ok(vec![pairs.into_iter().map(|(u, v)| (Some(v), Some(u))).collect()])
            }
            Acceptance::Rabin(pairs) => Ok(pairs
                .iter()
                .map(|(u, v)| {
                    let not_u: StateSet = all.difference(u).copied().collect();
                    vec![(Some(v.clone()), None), (None, Some(not_u))]
                })
                .collect()),
            Acceptance::Muller(_) => {
                Err(AutomatonError::UnsupportedAcceptance("Muller system-side acceptance"))
            }
        }
    }

    /// The *negation* of the acceptance as Streett-style pairs
    /// `(GF Ūᵢ ∧ FG V̄ᵢ)` disjuncts — what `¬φ_{F′}` needs on the
    /// specification side. Works for Büchi, Streett and Rabin
    /// specifications:
    ///
    /// - `¬Streett{(U,V)} = ⋁ (GF Ū ∧ FG V̄)`,
    /// - `¬Büchi F = FG F̄` (single disjunct with no GF part),
    /// - `¬Rabin{(U,V)} = ⋀ (GF U ∨ FG V̄)` — a *conjunction*, returned
    ///   as Streett pairs for direct conjunction into `φ`.
    ///
    /// Returns `NegatedAcceptance` describing which combination applies.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnsupportedAcceptance`] for Muller.
    pub fn negated_acceptance(&self) -> Result<NegatedAcceptance, AutomatonError> {
        let all: StateSet = (0..self.num_states).collect();
        match &self.acceptance {
            Acceptance::Buchi(f) => {
                let complement: StateSet = all.difference(f).copied().collect();
                Ok(NegatedAcceptance::Disjuncts(vec![(None, Some(complement))]))
            }
            Acceptance::Streett(pairs) => Ok(NegatedAcceptance::Disjuncts(
                pairs
                    .iter()
                    .map(|(u, v)| {
                        let not_u: StateSet = all.difference(u).copied().collect();
                        let not_v: StateSet = all.difference(v).copied().collect();
                        (Some(not_u), Some(not_v))
                    })
                    .collect(),
            )),
            Acceptance::Rabin(pairs) => Ok(NegatedAcceptance::Conjuncts(
                pairs
                    .iter()
                    .map(|(u, v)| {
                        let not_v: StateSet = all.difference(v).copied().collect();
                        // GF U ∨ FG V̄.
                        (Some(u.clone()), Some(not_v))
                    })
                    .collect(),
            )),
            Acceptance::Muller(_) => {
                Err(AutomatonError::UnsupportedAcceptance("Muller specification-side negation"))
            }
        }
    }
}

/// The negated specification acceptance, in fairness-class shape.
///
/// Each element is `(gf, fg)`: a `GF`-set and/or an `FG`-set over
/// specification states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegatedAcceptance {
    /// `⋁ᵢ (GF gfᵢ ∧ FG fgᵢ)` — one containment check per disjunct.
    Disjuncts(Vec<(Option<StateSet>, Option<StateSet>)>),
    /// `⋀ᵢ (GF gfᵢ ∨ FG fgᵢ)` — conjoined into a single check.
    Conjuncts(Vec<(Option<StateSet>, Option<StateSet>)>),
}
