//! Language containment `L(K) ⊆ L(K′)` and counterexample extraction
//! (Section 8 of the paper).

use smc_bdd::Bdd;
use smc_checker::{check_efairness, witness_efairness, CycleStrategy, FairnessConjunct};
use smc_kripke::{ExplicitModel, State, SymbolicModel};

use crate::automaton::{NegatedAcceptance, OmegaAutomaton};
use crate::error::AutomatonError;
use crate::run::accepts;
use crate::word::OmegaWord;

/// Result of a containment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentOutcome {
    /// `L(K) ⊆ L(K′)`.
    Holds,
    /// Containment fails; `word ∈ L(K) \ L(K′)`, demonstrated by the
    /// accompanying lasso run over product states `(K-state, K′-state)`.
    Fails {
        /// The ultimately periodic counterexample word.
        word: OmegaWord,
        /// The product run (prefix + cycle).
        run: Vec<(usize, usize)>,
        /// Cycle start within `run`.
        loopback: usize,
    },
}

/// Builds the product state-transition system `M(K, K′)` of the paper:
/// states `(s, s′)` reachable from the initial pair, with a transition
/// when both automata can move on a *common* letter. Returns the
/// explicit graph plus the pair behind each product index.
///
/// Product states are labeled `sys_{s}` and `spec_{s′}` so acceptance
/// sets can be rebuilt as unions of labels.
///
/// # Errors
///
/// See [`check_containment`].
pub fn product_model(
    k: &OmegaAutomaton,
    kp: &OmegaAutomaton,
) -> Result<(ExplicitModel, Vec<(usize, usize)>), AutomatonError> {
    if k.alphabet() != kp.alphabet() {
        return Err(AutomatonError::AlphabetMismatch);
    }
    if !kp.is_deterministic() {
        return Err(AutomatonError::SpecNotDeterministic);
    }
    if !k.is_complete() {
        return Err(AutomatonError::NotComplete("system"));
    }
    if !kp.is_complete() {
        return Err(AutomatonError::NotComplete("specification"));
    }
    let mut explicit = ExplicitModel::new();
    let sys_aps: Vec<usize> =
        (0..k.num_states()).map(|s| explicit.add_ap(&format!("sys_{s}"))).collect();
    let spec_aps: Vec<usize> =
        (0..kp.num_states()).map(|s| explicit.add_ap(&format!("spec_{s}"))).collect();
    let mut index = std::collections::HashMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut worklist = Vec::new();
    let initial = (k.initial(), kp.initial());
    let id0 = explicit.add_state(&[sys_aps[initial.0], spec_aps[initial.1]]);
    index.insert(initial, id0);
    pairs.push(initial);
    explicit.add_initial(id0);
    worklist.push(initial);
    while let Some((s, sp)) = worklist.pop() {
        let from = index[&(s, sp)];
        for a in 0..k.alphabet().len() {
            let spec_next = kp.successors(sp, a)[0];
            for &t in k.successors(s, a) {
                let key = (t, spec_next);
                let to = *index.entry(key).or_insert_with(|| {
                    let id = explicit.add_state(&[sys_aps[t], spec_aps[spec_next]]);
                    pairs.push(key);
                    worklist.push(key);
                    id
                });
                explicit.add_edge(from, to);
            }
        }
    }
    Ok((explicit, pairs))
}

/// Checks `L(K) ⊆ L(K′)` via the paper's reduction: containment fails
/// iff the product satisfies `E(φ_F ∧ ¬φ_{F′})`, an instance of the CTL*
/// fairness class; the witness lasso projects to an ultimately periodic
/// word in the difference.
///
/// `K` may be a nondeterministic Büchi or Streett automaton; `K′` must
/// be deterministic and complete with Büchi, Streett or Rabin
/// acceptance.
///
/// # Errors
///
/// - [`AutomatonError::AlphabetMismatch`] / `SpecNotDeterministic` /
///   `NotComplete` on malformed inputs,
/// - [`AutomatonError::UnsupportedAcceptance`] for unsupported
///   acceptance combinations (e.g. a Muller specification).
pub fn check_containment(
    k: &OmegaAutomaton,
    kp: &OmegaAutomaton,
) -> Result<ContainmentOutcome, AutomatonError> {
    let (explicit, pairs) = product_model(k, kp)?;
    let mut model = explicit.to_symbolic()?;

    // φ_F for the system: Büchi/Streett give one alternative of
    // FG(U) ∨ GF(V) conjuncts; Rabin gives one alternative per pair
    // (E distributes over the path-level disjunction).
    let mut sys_alternatives: Vec<Vec<FairnessConjunct>> = Vec::new();
    for alt in k.acceptance_alternatives()? {
        let mut conjuncts = Vec::with_capacity(alt.len());
        for (gf, fg) in alt {
            let gf_set = match gf {
                Some(s) => Some(union_of(&mut model, "sys", s.iter().copied())?),
                None => None,
            };
            let fg_set = match fg {
                Some(s) => Some(union_of(&mut model, "sys", s.iter().copied())?),
                None => None,
            };
            conjuncts.push(FairnessConjunct { gf: gf_set, fg: fg_set });
        }
        sys_alternatives.push(conjuncts);
    }

    // ¬φ_{F′}: disjuncts (or conjuncts, for Rabin) over spec states.
    let neg = kp.negated_acceptance()?;
    let spec_alternatives: Vec<Vec<FairnessConjunct>> = match neg {
        NegatedAcceptance::Disjuncts(ds) => {
            let mut alts = Vec::new();
            for (gf, fg) in ds {
                let mut conjuncts = Vec::new();
                if let Some(gf) = gf {
                    let set = union_of(&mut model, "spec", gf.iter().copied())?;
                    conjuncts.push(FairnessConjunct::gf(set));
                }
                if let Some(fg) = fg {
                    let set = union_of(&mut model, "spec", fg.iter().copied())?;
                    conjuncts.push(FairnessConjunct::fg(set));
                }
                alts.push(conjuncts);
            }
            alts
        }
        NegatedAcceptance::Conjuncts(cs) => {
            let mut conjuncts = Vec::new();
            for (gf, fg) in cs {
                let gf_set = match gf {
                    Some(s) => Some(union_of(&mut model, "spec", s.iter().copied())?),
                    None => None,
                };
                let fg_set = match fg {
                    Some(s) => Some(union_of(&mut model, "spec", s.iter().copied())?),
                    None => None,
                };
                conjuncts.push(FairnessConjunct { gf: gf_set, fg: fg_set });
            }
            vec![conjuncts]
        }
    };

    // The full E(φ_F ∧ ¬φ_{F′}) is the disjunction over the cross
    // product of system and spec alternatives.
    let mut alternatives: Vec<Vec<FairnessConjunct>> = Vec::new();
    for sys in &sys_alternatives {
        for spec in &spec_alternatives {
            let mut conjuncts = sys.clone();
            conjuncts.extend(spec.iter().copied());
            alternatives.push(conjuncts);
        }
    }

    for conjuncts in &alternatives {
        let (set, _) = check_efairness(&mut model, conjuncts).map_err(AutomatonError::Check)?;
        let init = model.init();
        if !model.manager_mut().intersects(init, set) {
            continue;
        }
        // Containment fails: extract the witness lasso and project it to
        // a word.
        let start_set = model.manager_mut().and(init, set);
        let start = model
            .pick_state(start_set)
            .ok_or(AutomatonError::Check(smc_checker::CheckError::NothingToExplain))?;
        let (trace, _, _) =
            witness_efairness(&mut model, conjuncts, &start, CycleStrategy::Restart)
                .map_err(AutomatonError::Check)?;
        let run: Vec<usize> = trace.states.iter().map(decode_index).collect();
        let loopback = trace.loopback.expect("fairness witnesses are lassos");
        let word = word_of_run(k, kp, &pairs, &run, loopback);
        let run_pairs: Vec<(usize, usize)> = run.iter().map(|&i| pairs[i]).collect();
        debug_assert!(accepts(k, &word), "word must be accepted by the system");
        debug_assert!(!accepts(kp, &word), "word must be rejected by the spec");
        return Ok(ContainmentOutcome::Fails { word, run: run_pairs, loopback });
    }
    Ok(ContainmentOutcome::Holds)
}

/// The union of labeled product-state sets `{prefix}_{i}`.
fn union_of(
    model: &mut SymbolicModel,
    prefix: &str,
    states: impl Iterator<Item = usize>,
) -> Result<Bdd, AutomatonError> {
    let mut acc = Bdd::FALSE;
    for s in states {
        let set = model.ap(&format!("{prefix}_{s}"))?;
        acc = model.manager_mut().or(acc, set);
    }
    Ok(acc)
}

/// Decodes a binary-encoded product state back to its index (the
/// encoding used by `ExplicitModel::to_symbolic`).
fn decode_index(s: &State) -> usize {
    s.0.iter().enumerate().fold(0, |acc, (i, &b)| acc | usize::from(b) << i)
}

/// Recovers one common letter per run edge, producing the ultimately
/// periodic counterexample word.
fn word_of_run(
    k: &OmegaAutomaton,
    kp: &OmegaAutomaton,
    pairs: &[(usize, usize)],
    run: &[usize],
    loopback: usize,
) -> OmegaWord {
    let letter = |from: usize, to: usize| -> usize {
        let (s, sp) = pairs[from];
        let (t, tp) = pairs[to];
        (0..k.alphabet().len())
            .find(|&a| k.successors(s, a).contains(&t) && kp.successors(sp, a).first() == Some(&tp))
            .expect("product edges carry at least one common letter")
    };
    let mut letters = Vec::with_capacity(run.len());
    for w in run.windows(2) {
        letters.push(letter(w[0], w[1]));
    }
    letters.push(letter(*run.last().expect("nonempty run"), run[loopback]));
    let cycle = letters.split_off(loopback);
    OmegaWord::new(letters, cycle)
}
