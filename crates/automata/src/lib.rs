#![warn(missing_docs)]

//! # smc-automata — ω-automata and language-containment counterexamples
//!
//! Section 8 of Clarke–Grumberg–McMillan–Zhao: verification by language
//! containment. The system is an ω-automaton `K`, the specification a
//! *deterministic complete* ω-automaton `K′`; the property is
//! `L(K) ⊆ L(K′)`, decided by checking
//!
//! ```text
//! M(K, K′) ⊨ ¬E(φ_F ∧ ¬φ_{F′})
//! ```
//!
//! on the product state-transition system `M(K, K′)`, where `φ_F`
//! expresses `K`'s Streett acceptance as `⋀ (FG U ∨ GF V)` and `¬φ_{F′}`
//! the violation of `K′`'s as `⋁ (GF Ū′ ∧ FG V̄′)` — instances of the
//! CTL* fairness class of Section 7. A failed containment yields an
//! **ultimately periodic word** in `L(K) \ L(K′)`.
//!
//! Supported acceptance conditions: Streett (primary), Büchi (embedded
//! into Streett), Rabin and Muller (checkable on words; deterministic
//! Rabin specifications are negated directly into Streett constraints).
//!
//! ## Example
//!
//! ```
//! use smc_automata::{Acceptance, OmegaAutomaton};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A Büchi automaton over {a, b} accepting words with infinitely
//! // many a's.
//! let mut k = OmegaAutomaton::new(2, 0, vec!["a".into(), "b".into()]);
//! k.add_transition(0, 0, 1); // on a -> state 1 (accepting)
//! k.add_transition(0, 1, 0);
//! k.add_transition(1, 0, 1);
//! k.add_transition(1, 1, 0);
//! k.set_acceptance(Acceptance::buchi([1]));
//! assert!(k.is_deterministic() && k.is_complete());
//! # Ok(())
//! # }
//! ```

mod automaton;
mod containment;
mod error;
mod run;
mod word;

pub use automaton::{Acceptance, NegatedAcceptance, OmegaAutomaton};
pub use containment::{check_containment, product_model, ContainmentOutcome};
pub use error::AutomatonError;
pub use run::accepts;
pub use word::OmegaWord;

#[cfg(test)]
mod tests;
