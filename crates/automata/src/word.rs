//! Ultimately periodic ω-words — the finite representation of
//! language-containment counterexamples.

use std::fmt;

/// An ultimately periodic infinite word `prefix · cycleᵚ` over symbol
/// indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OmegaWord {
    /// The finite prefix.
    pub prefix: Vec<usize>,
    /// The infinitely repeated period (nonempty).
    pub cycle: Vec<usize>,
}

impl OmegaWord {
    /// Creates a word.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is empty (the word must be infinite).
    pub fn new(prefix: Vec<usize>, cycle: Vec<usize>) -> OmegaWord {
        assert!(!cycle.is_empty(), "the period of an ω-word must be nonempty");
        OmegaWord { prefix, cycle }
    }

    /// The symbol at position `i` of the infinite word.
    pub fn symbol_at(&self, i: usize) -> usize {
        if i < self.prefix.len() {
            self.prefix[i]
        } else {
            self.cycle[(i - self.prefix.len()) % self.cycle.len()]
        }
    }

    /// Total length of the finite representation.
    pub fn len(&self) -> usize {
        self.prefix.len() + self.cycle.len()
    }

    /// Never true; an ω-word always has a nonempty period.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders the word with symbol names, e.g. `a b (c a)^ω`.
    pub fn render(&self, alphabet: &[String]) -> String {
        let name = |&s: &usize| alphabet[s].clone();
        let prefix: Vec<String> = self.prefix.iter().map(name).collect();
        let cycle: Vec<String> = self.cycle.iter().map(name).collect();
        if prefix.is_empty() {
            format!("({})^ω", cycle.join(" "))
        } else {
            format!("{} ({})^ω", prefix.join(" "), cycle.join(" "))
        }
    }
}

/// Prints raw symbol indices; use [`render`](OmegaWord::render) for
/// symbol names.
impl fmt::Display for OmegaWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: Vec<String> = self.prefix.iter().map(|s| s.to_string()).collect();
        let cycle: Vec<String> = self.cycle.iter().map(|s| s.to_string()).collect();
        if prefix.is_empty() {
            write!(f, "({})^ω", cycle.join(" "))
        } else {
            write!(f, "{} ({})^ω", prefix.join(" "), cycle.join(" "))
        }
    }
}
