//! Deciding whether an automaton accepts an ultimately periodic word —
//! the validation oracle for containment counterexamples.
//!
//! The word `w = prefix · cycleᵚ` is folded into the automaton: the
//! *run graph* has nodes `(state, position)` with `position` walking the
//! finite representation and wrapping at the period. `K` accepts `w` iff
//! the run graph contains a reachable cycle whose projected state set
//! satisfies the acceptance condition; per-condition cycle searches are
//! implemented below (the Streett one uses the classical SCC-refinement
//! emptiness algorithm).

use std::collections::BTreeSet;

use crate::automaton::{Acceptance, OmegaAutomaton};
use crate::word::OmegaWord;

/// Does the automaton accept the word?
pub fn accepts(automaton: &OmegaAutomaton, word: &OmegaWord) -> bool {
    let graph = RunGraph::build(automaton, word);
    match automaton.acceptance() {
        Acceptance::Buchi(f) => {
            // Büchi F == Streett {(∅, F)}.
            graph.has_streett_cycle(&[(BTreeSet::new(), f.clone())])
        }
        Acceptance::Streett(pairs) => graph.has_streett_cycle(pairs),
        Acceptance::Rabin(pairs) => pairs.iter().any(|(u, v)| graph.has_rabin_cycle(u, v)),
        Acceptance::Muller(family) => family.iter().any(|m| graph.has_muller_cycle(m)),
    }
}

/// The product of an automaton with a lasso word.
struct RunGraph {
    /// Node = state * period_len + position; `succ[node]` lists nodes.
    succ: Vec<Vec<usize>>,
    /// Projected automaton state of each node.
    state_of: Vec<usize>,
    /// Nodes reachable from the initial node.
    reachable: Vec<bool>,
}

impl RunGraph {
    fn build(automaton: &OmegaAutomaton, word: &OmegaWord) -> RunGraph {
        let positions = word.prefix.len() + word.cycle.len();
        let n = automaton.num_states();
        let node = |state: usize, pos: usize| state * positions + pos;
        let next_pos = |pos: usize| {
            if pos + 1 < positions {
                pos + 1
            } else {
                word.prefix.len() // wrap to the start of the period
            }
        };
        let mut succ = vec![Vec::new(); n * positions];
        let mut state_of = vec![0; n * positions];
        for s in 0..n {
            for pos in 0..positions {
                state_of[node(s, pos)] = s;
                let symbol = word.symbol_at(pos);
                for &t in automaton.successors(s, symbol) {
                    succ[node(s, pos)].push(node(t, next_pos(pos)));
                }
            }
        }
        // Reachability from (initial, 0).
        let mut reachable = vec![false; n * positions];
        let mut stack = vec![node(automaton.initial(), 0)];
        reachable[stack[0]] = true;
        while let Some(v) = stack.pop() {
            for &w in &succ[v] {
                if !reachable[w] {
                    reachable[w] = true;
                    stack.push(w);
                }
            }
        }
        RunGraph { succ, state_of, reachable }
    }

    /// Tarjan SCCs over a node subset. Returns components (singletons
    /// without self-loop excluded only by the callers).
    fn sccs(&self, alive: &[bool]) -> Vec<Vec<usize>> {
        let n = self.succ.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut comps = Vec::new();
        let mut counter = 0;
        let mut call: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if !alive[root] || index[root] != usize::MAX {
                continue;
            }
            index[root] = counter;
            low[root] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root] = true;
            call.push((root, 0));
            while let Some(&(v, next)) = call.last() {
                if next < self.succ[v].len() {
                    call.last_mut().expect("nonempty").1 += 1;
                    let w = self.succ[v][next];
                    if !alive[w] {
                        continue;
                    }
                    if index[w] == usize::MAX {
                        index[w] = counter;
                        low[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    fn is_nontrivial(&self, comp: &[usize]) -> bool {
        comp.len() > 1 || self.succ[comp[0]].contains(&comp[0])
    }

    /// Streett emptiness by SCC refinement: a reachable subgraph hosts an
    /// accepting run iff some nontrivial SCC `C` satisfies every pair
    /// (`states(C) ⊆ U` or `states(C) ∩ V ≠ ∅`), possibly after
    /// restricting to `U` for violated pairs.
    fn has_streett_cycle(&self, pairs: &[(BTreeSet<usize>, BTreeSet<usize>)]) -> bool {
        let alive = self.reachable.clone();
        self.streett_search(alive, pairs)
    }

    fn streett_search(
        &self,
        alive: Vec<bool>,
        pairs: &[(BTreeSet<usize>, BTreeSet<usize>)],
    ) -> bool {
        for comp in self.sccs(&alive) {
            if !self.is_nontrivial(&comp) {
                continue;
            }
            let states: BTreeSet<usize> = comp.iter().map(|&v| self.state_of[v]).collect();
            let violated: Vec<&(BTreeSet<usize>, BTreeSet<usize>)> = pairs
                .iter()
                .filter(|(u, v)| !states.is_subset(u) && states.is_disjoint(v))
                .collect();
            if violated.is_empty() {
                return true;
            }
            // Any accepting inf-set inside this SCC must project into
            // every violated pair's U; restrict and recurse.
            let mut restricted = vec![false; self.succ.len()];
            let mut shrank = false;
            for &v in &comp {
                let keep = violated.iter().all(|(u, _)| u.contains(&self.state_of[v]));
                restricted[v] = keep;
                shrank |= !keep;
            }
            if shrank && self.streett_search(restricted, pairs) {
                return true;
            }
        }
        false
    }

    /// Rabin pair (U, V): a reachable nontrivial SCC of the `U`-free
    /// subgraph intersecting `V`.
    fn has_rabin_cycle(&self, u: &BTreeSet<usize>, v: &BTreeSet<usize>) -> bool {
        let alive: Vec<bool> = (0..self.succ.len())
            .map(|n| self.reachable[n] && !u.contains(&self.state_of[n]))
            .collect();
        self.sccs(&alive).into_iter().any(|comp| {
            self.is_nontrivial(&comp) && comp.iter().any(|&n| v.contains(&self.state_of[n]))
        })
    }

    /// Muller set `M`: a reachable nontrivial SCC of the `M`-restricted
    /// subgraph whose projected states are exactly `M`.
    fn has_muller_cycle(&self, m: &BTreeSet<usize>) -> bool {
        let alive: Vec<bool> = (0..self.succ.len())
            .map(|n| self.reachable[n] && m.contains(&self.state_of[n]))
            .collect();
        self.sccs(&alive).into_iter().any(|comp| {
            if !self.is_nontrivial(&comp) {
                return false;
            }
            let states: BTreeSet<usize> = comp.iter().map(|&n| self.state_of[n]).collect();
            states == *m
        })
    }
}
