//! Error type for ω-automata operations.

use std::error::Error;
use std::fmt;

use smc_checker::CheckError;
use smc_kripke::KripkeError;

/// Errors reported by automaton constructions and the containment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomatonError {
    /// The two automata have different alphabets.
    AlphabetMismatch,
    /// The specification automaton must be deterministic (checking
    /// containment against a nondeterministic specification is
    /// PSPACE-hard, as the paper notes).
    SpecNotDeterministic,
    /// Both automata must be complete for the product reduction.
    NotComplete(&'static str),
    /// The acceptance condition is unsupported in this position (e.g. a
    /// Muller specification cannot be negated into the fairness class).
    UnsupportedAcceptance(&'static str),
    /// A state or symbol index is out of range.
    IndexOutOfRange(String),
    /// Error from the underlying model layer.
    Kripke(KripkeError),
    /// Error from the underlying checker.
    Check(CheckError),
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::AlphabetMismatch => {
                write!(f, "automata must share one alphabet")
            }
            AutomatonError::SpecNotDeterministic => {
                write!(f, "specification automaton must be deterministic")
            }
            AutomatonError::NotComplete(which) => {
                write!(f, "{which} automaton must be complete")
            }
            AutomatonError::UnsupportedAcceptance(what) => {
                write!(f, "unsupported acceptance condition: {what}")
            }
            AutomatonError::IndexOutOfRange(what) => write!(f, "index out of range: {what}"),
            AutomatonError::Kripke(e) => write!(f, "model error: {e}"),
            AutomatonError::Check(e) => write!(f, "checker error: {e}"),
        }
    }
}

impl Error for AutomatonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutomatonError::Kripke(e) => Some(e),
            AutomatonError::Check(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KripkeError> for AutomatonError {
    fn from(e: KripkeError) -> AutomatonError {
        AutomatonError::Kripke(e)
    }
}

impl From<CheckError> for AutomatonError {
    fn from(e: CheckError) -> AutomatonError {
        AutomatonError::Check(e)
    }
}
